"""Tests for dataset analogues, windowing, scalers and the production simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    DATASET_PROFILES,
    MicroserviceLatencySimulator,
    MinMaxScaler,
    ProductionConfig,
    StandardScaler,
    label_windows,
    list_datasets,
    load_dataset,
    overlap_average,
    sliding_windows,
    window_starts,
)


class TestDatasets:
    def test_all_six_datasets_listed(self):
        assert list_datasets(tag="paper") == ["SMD", "PSM", "SWaT", "SMAP", "MSL", "GCP"]
        assert set(list_datasets()) >= {"SMD", "PSM", "SWaT", "SMAP", "MSL", "GCP",
                                        "DRIFT", "REGIME", "SEASONAL"}

    @pytest.mark.parametrize("name", ["SMD", "PSM", "SWaT", "SMAP", "MSL", "GCP"])
    def test_dataset_shapes_and_labels(self, name):
        dataset = load_dataset(name, seed=0, scale=0.15)
        assert dataset.train.shape[1] == DATASET_PROFILES[name].num_features
        assert dataset.test.shape[0] == dataset.test_labels.shape[0]
        assert set(np.unique(dataset.test_labels)).issubset({0, 1})
        assert dataset.test_labels.sum() > 0
        assert np.isfinite(dataset.train).all() and np.isfinite(dataset.test).all()

    def test_reproducible_across_calls(self):
        a = load_dataset("SMD", seed=3, scale=0.1)
        b = load_dataset("SMD", seed=3, scale=0.1)
        np.testing.assert_allclose(a.train, b.train)
        np.testing.assert_allclose(a.test, b.test)
        np.testing.assert_array_equal(a.test_labels, b.test_labels)

    def test_seeds_produce_different_instances(self):
        a = load_dataset("GCP", seed=0, scale=0.1)
        b = load_dataset("GCP", seed=1, scale=0.1)
        assert not np.allclose(a.test, b.test)

    def test_case_insensitive_and_alias(self):
        assert load_dataset("swat", seed=0, scale=0.1).name == "SWaT"
        assert load_dataset("smd", seed=0, scale=0.1).name == "SMD"

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("NOPE")

    def test_invalid_scale_raises(self):
        with pytest.raises(ValueError):
            load_dataset("SMD", scale=0.0)

    def test_anomaly_ratio_tracks_profile(self):
        dataset = load_dataset("PSM", seed=0, scale=0.3)
        profile = DATASET_PROFILES["PSM"]
        assert dataset.anomaly_ratio >= 0.5 * profile.anomaly_fraction

    def test_segments_cover_labels(self):
        dataset = load_dataset("MSL", seed=0, scale=0.2)
        rebuilt = np.zeros_like(dataset.test_labels)
        for seg in dataset.segments:
            rebuilt[seg.start:seg.end] = 1
        np.testing.assert_array_equal(rebuilt, dataset.test_labels)


class TestWindows:
    def test_window_starts_cover_series(self):
        starts = window_starts(105, window_size=20, stride=10)
        assert starts[0] == 0
        assert starts[-1] == 85

    def test_sliding_windows_shape(self):
        series = np.random.default_rng(0).normal(size=(100, 4))
        windows, starts = sliding_windows(series, window_size=25, stride=25)
        assert windows.shape == (4, 25, 4)
        assert len(starts) == 4

    def test_window_too_large_raises(self):
        with pytest.raises(ValueError):
            window_starts(10, window_size=20, stride=5)

    def test_bad_stride_raises(self):
        with pytest.raises(ValueError):
            window_starts(10, window_size=5, stride=0)

    def test_non_2d_raises(self):
        with pytest.raises(ValueError):
            sliding_windows(np.zeros(10), 5, 2)

    def test_label_windows(self):
        labels = np.zeros(50, dtype=int)
        labels[30:35] = 1
        out = label_windows(labels, window_size=10, stride=10)
        np.testing.assert_array_equal(out, [0, 0, 0, 1, 0])

    def test_overlap_average_reconstructs_identity(self):
        series = np.random.default_rng(1).normal(size=(60, 3))
        windows, starts = sliding_windows(series, window_size=20, stride=10)
        merged = overlap_average(windows, starts, 60)
        np.testing.assert_allclose(merged, series, atol=1e-12)

    def test_overlap_average_1d_values(self):
        values = np.ones((3, 10))
        starts = np.array([0, 5, 10])
        merged = overlap_average(values, starts, 20)
        np.testing.assert_allclose(merged, np.ones(20))

    @settings(max_examples=25, deadline=None)
    @given(length=st.integers(min_value=30, max_value=300),
           window=st.integers(min_value=5, max_value=30),
           stride=st.integers(min_value=1, max_value=30))
    def test_property_every_timestamp_covered(self, length, window, stride):
        # Full coverage is only guaranteed when windows overlap or tile,
        # i.e. stride <= window, which is how every detector uses them.
        if window > length:
            window = length
        stride = min(stride, window)
        starts = window_starts(length, window, stride)
        covered = np.zeros(length, dtype=bool)
        for s in starts:
            covered[s:s + window] = True
        assert covered.all()


class TestScalers:
    def test_standard_scaler_stats(self):
        data = np.random.default_rng(0).normal(5.0, 3.0, size=(500, 4))
        scaled = StandardScaler().fit_transform(data)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-6)

    def test_standard_scaler_round_trip(self):
        data = np.random.default_rng(1).normal(size=(200, 3))
        scaler = StandardScaler().fit(data)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(data)), data, atol=1e-9)

    def test_standard_scaler_constant_channel(self):
        data = np.ones((100, 2))
        scaled = StandardScaler().fit_transform(data)
        assert np.isfinite(scaled).all()

    def test_minmax_scaler_range(self):
        data = np.random.default_rng(2).uniform(-5, 9, size=(300, 5))
        scaled = MinMaxScaler().fit_transform(data)
        assert scaled.min() >= 0.0 - 1e-12
        assert scaled.max() <= 1.0 + 1e-12

    def test_minmax_scaler_clips_extreme_test_values(self):
        train = np.random.default_rng(3).uniform(0, 1, size=(100, 1))
        scaler = MinMaxScaler(clip_margin=2.0).fit(train)
        out = scaler.transform(np.array([[1e6], [-1e6]]))
        assert out.max() <= 3.0
        assert out.min() >= -2.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((3, 2)))
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.zeros((3, 2)))

    def test_1d_input_raises(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros(5))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=50))
    def test_property_minmax_round_trip(self, seed):
        data = np.random.default_rng(seed).normal(size=(50, 3)) * 7 + 2
        scaler = MinMaxScaler(clip_margin=None).fit(data)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(data)), data, atol=1e-8)


class TestProductionSimulator:
    def test_trace_shapes(self):
        sim = MicroserviceLatencySimulator(ProductionConfig(num_services=6, seed=1))
        trace = sim.generate()
        assert trace.train.shape[1] == 6
        assert trace.test.shape[0] == trace.test_labels.shape[0]
        assert trace.num_services == 6

    def test_latency_positive(self):
        trace = MicroserviceLatencySimulator(ProductionConfig(seed=2)).generate()
        assert (trace.train > 0).all()
        assert (trace.test > 0).all()

    def test_incidents_present_and_bounded(self):
        trace = MicroserviceLatencySimulator(ProductionConfig(seed=3)).generate()
        assert trace.test_labels.sum() > 0
        assert trace.test_labels.mean() < 0.3

    def test_incident_raises_latency(self):
        trace = MicroserviceLatencySimulator(ProductionConfig(seed=4)).generate()
        anomalous = trace.test[trace.test_labels == 1].mean()
        normal = trace.test[trace.test_labels == 0].mean()
        assert anomalous > normal

    def test_stream_yields_every_timestamp(self):
        sim = MicroserviceLatencySimulator(ProductionConfig(num_services=4, seed=5))
        trace = sim.generate()
        events = list(sim.stream(trace))
        assert len(events) == trace.test.shape[0]
        index, values, label = events[0]
        assert index == 0
        assert values.shape == (4,)
        assert label in (0, 1)

    def test_deterministic_for_seed(self):
        a = MicroserviceLatencySimulator(ProductionConfig(seed=9)).generate()
        b = MicroserviceLatencySimulator(ProductionConfig(seed=9)).generate()
        np.testing.assert_allclose(a.test, b.test)
