"""Tests for the synthetic MTS generator and anomaly injection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import MTSConfig, generate_mts, inject_anomalies
from repro.data.anomalies import (
    ANOMALY_TYPES,
    inject_correlation_break,
    inject_flatline,
    inject_level_shift,
    inject_spike,
)


class TestGenerator:
    def test_output_shape(self):
        config = MTSConfig(length=300, num_features=7)
        out = generate_mts(config, np.random.default_rng(0))
        assert out.shape == (300, 7)

    def test_deterministic_given_seed(self):
        config = MTSConfig(length=200, num_features=5)
        a = generate_mts(config, np.random.default_rng(42))
        b = generate_mts(config, np.random.default_rng(42))
        np.testing.assert_allclose(a, b)

    def test_different_seeds_differ(self):
        config = MTSConfig(length=200, num_features=5)
        a = generate_mts(config, np.random.default_rng(1))
        b = generate_mts(config, np.random.default_rng(2))
        assert not np.allclose(a, b)

    def test_values_finite(self):
        config = MTSConfig(length=500, num_features=20, discrete_fraction=0.3)
        out = generate_mts(config, np.random.default_rng(3))
        assert np.isfinite(out).all()

    def test_channels_are_correlated_within_groups(self):
        # With a single group and one factor all channels should share structure.
        config = MTSConfig(length=1000, num_features=6, num_factors=1, num_groups=1,
                           noise_scale=0.02, trend_scale=0.0)
        out = generate_mts(config, np.random.default_rng(5))
        corr = np.corrcoef(out.T)
        off_diag = corr[np.triu_indices(6, k=1)]
        assert np.abs(off_diag).mean() > 0.5

    def test_discrete_fraction_produces_binaryish_channels(self):
        config = MTSConfig(length=400, num_features=10, discrete_fraction=0.5)
        out = generate_mts(config, np.random.default_rng(7))
        near_binary = 0
        for k in range(10):
            channel = out[:, k]
            span = channel.max() - channel.min()
            if span < 1.2 and len(np.unique(np.round(channel, 0))) <= 3:
                near_binary += 1
        assert near_binary >= 3

    @settings(max_examples=20, deadline=None)
    @given(length=st.integers(min_value=50, max_value=400),
           features=st.integers(min_value=1, max_value=30))
    def test_property_shape_and_finiteness(self, length, features):
        config = MTSConfig(length=length, num_features=features)
        out = generate_mts(config, np.random.default_rng(length * 31 + features))
        assert out.shape == (length, features)
        assert np.isfinite(out).all()


class TestAnomalyInjection:
    def _series(self, length=600, features=8, seed=0):
        config = MTSConfig(length=length, num_features=features)
        return generate_mts(config, np.random.default_rng(seed))

    def test_labels_fraction_near_target(self):
        series = self._series()
        _, labels, _ = inject_anomalies(
            series, np.random.default_rng(0),
            anomaly_types=("spike", "level_shift"), anomaly_fraction=0.08,
        )
        assert 0.04 <= labels.mean() <= 0.15

    def test_original_series_not_mutated(self):
        series = self._series()
        before = series.copy()
        inject_anomalies(series, np.random.default_rng(0), anomaly_types=("spike",))
        np.testing.assert_allclose(series, before)

    def test_segments_match_labels(self):
        series = self._series()
        _, labels, segments = inject_anomalies(
            series, np.random.default_rng(1), anomaly_types=("level_shift",),
            anomaly_fraction=0.1,
        )
        rebuilt = np.zeros_like(labels)
        for seg in segments:
            rebuilt[seg.start:seg.end] = 1
        np.testing.assert_array_equal(rebuilt, labels)

    def test_segments_do_not_overlap(self):
        series = self._series(length=1000)
        _, _, segments = inject_anomalies(
            series, np.random.default_rng(2), anomaly_types=("drift", "spike"),
            anomaly_fraction=0.15,
        )
        ordered = sorted(segments, key=lambda s: s.start)
        for first, second in zip(ordered, ordered[1:]):
            assert first.end <= second.start

    def test_unknown_type_raises(self):
        with pytest.raises(ValueError):
            inject_anomalies(self._series(), np.random.default_rng(0),
                             anomaly_types=("not_a_type",))

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            inject_anomalies(self._series(), np.random.default_rng(0),
                             anomaly_types=("spike",), anomaly_fraction=0.9)

    def test_spike_changes_only_segment(self):
        series = self._series()
        modified = series.copy()
        inject_spike(modified, 100, 102, np.array([0, 1]), np.random.default_rng(0))
        np.testing.assert_allclose(modified[:100], series[:100])
        np.testing.assert_allclose(modified[102:], series[102:])
        assert np.abs(modified[100:102, :2] - series[100:102, :2]).max() > 1.0

    def test_level_shift_moves_mean(self):
        series = self._series()
        modified = series.copy()
        inject_level_shift(modified, 50, 150, np.array([3]), np.random.default_rng(0))
        delta = np.abs(modified[50:150, 3].mean() - series[50:150, 3].mean())
        assert delta > 1.0

    def test_flatline_freezes_values(self):
        series = self._series()
        modified = series.copy()
        inject_flatline(modified, 10, 60, np.array([2, 4]), np.random.default_rng(0))
        assert np.allclose(modified[10:60, 2], modified[10, 2])
        assert np.allclose(modified[10:60, 4], modified[10, 4])

    def test_correlation_break_preserves_marginals(self):
        series = self._series(length=800)
        modified = series.copy()
        inject_correlation_break(modified, 100, 300, np.array([0, 1, 2]),
                                 np.random.default_rng(0))
        # The same values appear in the segment, just reordered in time.
        np.testing.assert_allclose(
            np.sort(modified[100:300, 0]), np.sort(series[100:300, 0])
        )

    def test_registry_contains_all_injectors(self):
        assert set(ANOMALY_TYPES) == {
            "spike", "level_shift", "drift", "amplitude", "flatline",
            "noise_burst", "correlation_break",
        }

    @settings(max_examples=15, deadline=None)
    @given(fraction=st.floats(min_value=0.02, max_value=0.3),
           seed=st.integers(min_value=0, max_value=100))
    def test_property_labels_binary_and_bounded(self, fraction, seed):
        series = self._series(length=500, seed=seed)
        _, labels, _ = inject_anomalies(
            series, np.random.default_rng(seed), anomaly_types=("spike", "level_shift"),
            anomaly_fraction=fraction,
        )
        assert set(np.unique(labels)).issubset({0, 1})
        assert labels.shape == (500,)
