"""Dataset registry contract: determinism, legacy bit-identity, adapters.

The frozen checksums below were computed from the pre-registry
``load_dataset`` implementation (the hand-rolled name → profile dispatch) at
``scale=0.05``.  The registry migration must reproduce every legacy dataset
byte-for-byte; any change to :func:`repro.data.datasets.synthesize_dataset`,
the generator functions or the seed contract shows up here first.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.data import (
    DATASET_REGISTRY,
    DatasetEntry,
    DatasetRegistry,
    MTSDataset,
    dataset_rng,
    list_datasets,
    load_dataset,
    load_nasa_tree,
    load_smd_tree,
    register_dataset,
    register_directory,
)


def _checksum(array: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()[:16]


def _triple(dataset) -> tuple:
    return (_checksum(dataset.train), _checksum(dataset.test),
            _checksum(dataset.test_labels))


# Frozen (train, test, test_labels) sha256 prefixes of the pre-registry
# loader at scale=0.05 — the bit-identity floor of the migration.
LEGACY_CHECKSUMS = {
    ("SMD", 0): ("f4feb64e295da299", "e1574a58db2d4a0a", "7c4b4e0c959ce8ba"),
    ("SMD", 1): ("5e44a3bd1b26b802", "d94fd9e975ab66a4", "88044dfe96ac0395"),
    ("PSM", 0): ("3d63aa32f1882adb", "ac984df0dfdd02e5", "032d125881864ba7"),
    ("PSM", 1): ("50fa50339485e30e", "9c657ccb7d93af99", "9a7393d9a626c693"),
    ("SWaT", 0): ("f6895733b6c8f796", "3d0b273c53e8f14b", "6daf7912a9694685"),
    ("SWaT", 1): ("44327acfc90c356d", "5a23d977e753f4a6", "67abe24960ad2949"),
    ("SMAP", 0): ("1040a87e37da66e2", "e9f965af2d4ce5bf", "f8bd450e9bbefed9"),
    ("SMAP", 1): ("b5beac03ec25a903", "c59ac667e408c23a", "1928b4310de0ae4d"),
    ("MSL", 0): ("be14101b659f0511", "cfd0805250d95b84", "b35b6c73defce514"),
    ("MSL", 1): ("f5ff8e29cbc57184", "0e7f39a8696051c0", "f0d17755b20ad0f7"),
    ("GCP", 0): ("4bcd960effba8c5b", "45e5ca945a4a134d", "d19076f2bd44214e"),
    ("GCP", 1): ("aabbdebcf3138e97", "9943db5fc1932bc8", "a5fdc804048cf319"),
}


class TestLegacyBitIdentity:
    @pytest.mark.parametrize("name,seed", sorted(LEGACY_CHECKSUMS))
    def test_checksums_frozen(self, name, seed):
        dataset = load_dataset(name, seed=seed, scale=0.05)
        assert _triple(dataset) == LEGACY_CHECKSUMS[(name, seed)]

    def test_aliases_resolve_to_identical_arrays(self):
        canonical = load_dataset("SWaT", seed=0, scale=0.05)
        for alias in ("swat", "SWAT", "s-w-a-t"):
            assert _triple(load_dataset(alias, seed=0, scale=0.05)) \
                == _triple(canonical)

    def test_repeated_calls_bit_identical(self):
        first = load_dataset("DRIFT", seed=3, scale=0.05)
        second = load_dataset("DRIFT", seed=3, scale=0.05)
        np.testing.assert_array_equal(second.train, first.train)
        np.testing.assert_array_equal(second.test, first.test)
        np.testing.assert_array_equal(second.test_labels, first.test_labels)


class TestCrossProcess:
    def test_load_is_bit_identical_across_processes(self):
        """The seed contract survives process boundaries (no PYTHONHASHSEED)."""
        code = textwrap.dedent("""
            import hashlib
            import numpy as np
            from repro.data import load_dataset

            d = load_dataset("SMD", seed=0, scale=0.05)
            for a in (d.train, d.test, d.test_labels):
                print(hashlib.sha256(np.ascontiguousarray(a).tobytes())
                      .hexdigest()[:16])
        """)
        env = dict(os.environ)
        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "random"
        output = subprocess.run([sys.executable, "-c", code], env=env,
                                capture_output=True, text=True, check=True)
        assert tuple(output.stdout.split()) == LEGACY_CHECKSUMS[("SMD", 0)]


class TestRegistryConsistency:
    def test_names_and_entries_agree(self):
        names = DATASET_REGISTRY.names()
        assert names == [entry.name for entry in DATASET_REGISTRY.entries()]
        assert len(names) == len(set(names))

    def test_list_datasets_is_the_registry_view(self):
        assert list_datasets() == DATASET_REGISTRY.names()
        assert list_datasets(tag="paper") == ["SMD", "PSM", "SWaT", "SMAP",
                                              "MSL", "GCP"]
        assert list_datasets(tag="regime") == ["DRIFT", "REGIME", "SEASONAL"]

    def test_metadata_matches_generated_shapes(self):
        for entry in DATASET_REGISTRY.entries(tag="synthetic"):
            dataset = load_dataset(entry.name, seed=0, scale=0.05)
            assert dataset.num_features == entry.num_features
            assert dataset.train.shape[0] == max(int(entry.train_length * 0.05), 200)
            assert dataset.name == entry.name
            assert entry.citation

    def test_contains_and_unknown_name(self):
        assert "SMD" in DATASET_REGISTRY
        assert "smap" in DATASET_REGISTRY
        assert "NOPE" not in DATASET_REGISTRY
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("NOPE")

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError, match="scale"):
            load_dataset("SMD", scale=0.0)

    def test_dataset_rng_is_name_and_seed_keyed(self):
        a = dataset_rng("SMD", 0).standard_normal(4)
        b = dataset_rng("SMD", 0).standard_normal(4)
        c = dataset_rng("SMD", 1).standard_normal(4)
        d = dataset_rng("PSM", 0).standard_normal(4)
        np.testing.assert_array_equal(b, a)
        assert not np.array_equal(c, a)
        assert not np.array_equal(d, a)


class TestRegistration:
    def test_decorator_registers_and_duplicates_fail(self):
        registry = DatasetRegistry()

        @register_dataset("TOY", num_features=2, train_length=200,
                          test_length=200, anomaly_fraction=0.1,
                          tags=("scratch",), aliases=("toy-set",),
                          registry=registry)
        def _load_toy(rng, scale):
            length = max(int(200 * scale), 10)
            data = rng.standard_normal((length, 2))
            return MTSDataset(name="TOY", train=data, test=data.copy(),
                              test_labels=np.zeros(length, dtype=np.int64),
                              segments=[])

        assert registry.names() == ["TOY"]
        assert registry.get("toyset").name == "TOY"
        dataset = registry.load("TOY", seed=0, scale=0.1)
        assert dataset.train.shape == (20, 2)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(DatasetEntry(
                name="toy-set", loader=_load_toy, num_features=2,
                train_length=200, test_length=200, anomaly_fraction=0.1))

    def test_unregister_frees_name_and_aliases(self):
        registry = DatasetRegistry()
        entry = DatasetEntry(name="TMP", loader=lambda rng, scale: None,
                             num_features=1, train_length=10, test_length=10,
                             anomaly_fraction=0.0, aliases=("tmpalias",))
        registry.register(entry)
        registry.unregister("tmpalias")
        assert "TMP" not in registry
        registry.register(entry)  # both keys free again
        assert registry.get("TMP") is entry


class TestDirectoryAdapters:
    def _write_smd_tree(self, root):
        rng = np.random.default_rng(7)
        train = rng.standard_normal((40, 3))
        test = rng.standard_normal((30, 3))
        labels = np.zeros(30, dtype=np.int64)
        labels[5:9] = 1
        labels[20:23] = 1
        for sub in ("train", "test", "test_label"):
            (root / sub).mkdir(parents=True)
        np.savetxt(root / "train" / "machine-1-1.txt", train, delimiter=",")
        np.savetxt(root / "test" / "machine-1-1.txt", test, delimiter=",")
        np.savetxt(root / "test_label" / "machine-1-1.txt", labels, fmt="%d")
        return train, test, labels

    def test_smd_tree_round_trip(self, tmp_path):
        train, test, labels = self._write_smd_tree(tmp_path)
        dataset = load_smd_tree(tmp_path, "machine-1-1")
        np.testing.assert_allclose(dataset.train, train)
        np.testing.assert_allclose(dataset.test, test)
        np.testing.assert_array_equal(dataset.test_labels, labels)
        assert [(s.start, s.end) for s in dataset.segments] == [(5, 9), (20, 23)]
        assert dataset.name == "SMD:machine-1-1"

    def test_smd_tree_rejects_label_length_mismatch(self, tmp_path):
        self._write_smd_tree(tmp_path)
        np.savetxt(tmp_path / "test_label" / "machine-1-1.txt",
                   np.zeros(7, dtype=np.int64), fmt="%d")
        with pytest.raises(ValueError, match="label length"):
            load_smd_tree(tmp_path, "machine-1-1")

    def _write_nasa_tree(self, root):
        rng = np.random.default_rng(11)
        train = rng.standard_normal((50, 2))
        test = rng.standard_normal((40, 2))
        for sub in ("train", "test"):
            (root / sub).mkdir(parents=True)
        np.save(root / "train" / "A-1.npy", train)
        np.save(root / "test" / "A-1.npy", test)
        with open(root / "labeled_anomalies.csv", "w", newline="") as handle:
            handle.write("chan_id,spacecraft,anomaly_sequences\n")
            handle.write('A-1,SMAP,"[[10, 14], [30, 32]]"\n')
            handle.write('B-9,SMAP,"[[0, 5]]"\n')
        return train, test

    def test_nasa_tree_round_trip(self, tmp_path):
        train, test = self._write_nasa_tree(tmp_path)
        dataset = load_nasa_tree(tmp_path, "A-1")
        np.testing.assert_allclose(dataset.train, train)
        np.testing.assert_allclose(dataset.test, test)
        expected = np.zeros(40, dtype=np.int64)
        expected[10:15] = 1  # end-inclusive intervals
        expected[30:33] = 1
        np.testing.assert_array_equal(dataset.test_labels, expected)

    def test_register_directory_probes_metadata(self, tmp_path):
        self._write_smd_tree(tmp_path)
        registry = DatasetRegistry()
        entry = register_directory("SMD-1-1", tmp_path, "smd", "machine-1-1",
                                   citation="Su et al., 2019",
                                   registry=registry)
        assert entry.num_features == 3
        assert entry.train_length == 40
        assert entry.test_length == 30
        assert entry.anomaly_fraction == pytest.approx(7 / 30)
        assert entry.tags == ("external",)
        dataset = registry.load("smd11", seed=5, scale=2.0)
        assert dataset.name == "SMD-1-1"
        assert dataset.train.shape == (40, 3)  # file-backed: scale ignored

    def test_register_directory_rejects_unknown_layout(self, tmp_path):
        with pytest.raises(ValueError, match="unknown layout"):
            register_directory("X", tmp_path, "parquet", "e",
                               registry=DatasetRegistry())
