"""Tests for layers, attention, recurrent cells, optimizers and serialization."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Conv1d,
    Dropout,
    Embedding,
    GRU,
    LayerNorm,
    Linear,
    LSTM,
    MLP,
    MultiHeadSelfAttention,
    SGD,
    Sequential,
    StepLR,
    Tensor,
    TransformerEncoder,
    TransformerEncoderLayer,
    clip_grad_norm,
    functional as F,
    load_state_dict,
    save_state_dict,
)

RNG = np.random.default_rng(7)


class TestLinearAndMLP:
    def test_linear_shapes(self):
        layer = Linear(5, 3, rng=RNG)
        out = layer(Tensor(RNG.normal(size=(4, 5))))
        assert out.shape == (4, 3)

    def test_linear_batched_input(self):
        layer = Linear(5, 3, rng=RNG)
        out = layer(Tensor(RNG.normal(size=(2, 7, 5))))
        assert out.shape == (2, 7, 3)

    def test_mlp_learns_linear_map(self):
        rng = np.random.default_rng(3)
        model = MLP([2, 16, 1], rng=rng)
        optimizer = Adam(model.parameters(), lr=0.01)
        x = rng.normal(size=(64, 2))
        y = (2 * x[:, :1] - 3 * x[:, 1:]) + 0.5
        first_loss = None
        for _ in range(150):
            optimizer.zero_grad()
            loss = F.mse_loss(model(Tensor(x)), Tensor(y))
            if first_loss is None:
                first_loss = float(loss.data)
            loss.backward()
            optimizer.step()
        assert float(loss.data) < 0.05 * first_loss

    def test_mlp_requires_two_sizes(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_num_parameters(self):
        layer = Linear(5, 3, rng=RNG)
        assert layer.num_parameters() == 5 * 3 + 3


class TestConvAndNorm:
    def test_conv1d_kernel1_shape(self):
        conv = Conv1d(4, 8, kernel_size=1, rng=RNG)
        out = conv(Tensor(RNG.normal(size=(2, 4, 10))))
        assert out.shape == (2, 8, 10)

    def test_conv1d_kernel3_same_padding(self):
        conv = Conv1d(3, 5, kernel_size=3, rng=RNG)
        out = conv(Tensor(RNG.normal(size=(2, 3, 12))))
        assert out.shape == (2, 5, 12)

    def test_conv1d_matches_manual(self):
        conv = Conv1d(1, 1, kernel_size=3, padding=0, bias=False, rng=RNG)
        conv.weight.data = np.array([[[1.0, 0.0, -1.0]]])
        x = np.arange(6.0).reshape(1, 1, 6)
        out = conv(Tensor(x)).data
        expected = np.array([[[x[0, 0, i] - x[0, 0, i + 2] for i in range(4)]]])
        np.testing.assert_allclose(out, expected)

    def test_conv1d_channel_mismatch_raises(self):
        conv = Conv1d(3, 5, kernel_size=3, rng=RNG)
        with pytest.raises(ValueError):
            conv(Tensor(RNG.normal(size=(2, 4, 12))))

    def test_layer_norm_zero_mean_unit_var(self):
        norm = LayerNorm(6)
        out = norm(Tensor(RNG.normal(size=(3, 6)) * 5 + 2)).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_embedding_lookup(self):
        emb = Embedding(10, 4, rng=RNG)
        out = emb(np.array([1, 1, 3]))
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out.data[0], out.data[1])

    def test_embedding_gradient_accumulates_for_repeated_index(self):
        emb = Embedding(5, 2, rng=RNG)
        out = emb(np.array([2, 2]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[2], [2.0, 2.0])

    def test_dropout_eval_is_identity(self):
        drop = Dropout(0.5)
        drop.eval()
        x = Tensor(RNG.normal(size=(4, 4)))
        np.testing.assert_allclose(drop(x).data, x.data)

    def test_dropout_train_scales(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((1000,)))
        out = drop(x).data
        # Kept entries are scaled by 1/keep = 2; mean stays near 1.
        assert set(np.round(np.unique(out), 6)).issubset({0.0, 2.0})
        assert abs(out.mean() - 1.0) < 0.15


class TestAttention:
    def test_self_attention_shape(self):
        attn = MultiHeadSelfAttention(8, 2, rng=RNG)
        out = attn(Tensor(RNG.normal(size=(3, 5, 8))))
        assert out.shape == (3, 5, 8)

    def test_attention_mask_blocks_positions(self):
        attn = MultiHeadSelfAttention(4, 1, rng=np.random.default_rng(0))
        x = RNG.normal(size=(1, 4, 4))
        mask = np.zeros((1, 1, 4, 4))
        mask[..., 3] = -1e9  # nobody can attend to position 3
        out_masked = attn(Tensor(x), attn_mask=mask).data
        x_perturbed = x.copy()
        x_perturbed[0, 3] += 10.0
        out_perturbed = attn(Tensor(x_perturbed), attn_mask=mask).data
        # Positions other than 3 are unaffected by changing position 3's value.
        np.testing.assert_allclose(out_masked[0, :3], out_perturbed[0, :3], atol=1e-6)

    def test_model_dim_head_mismatch(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(7, 2)

    def test_encoder_layer_grad_flows(self):
        layer = TransformerEncoderLayer(8, 2, rng=RNG)
        x = Tensor(RNG.normal(size=(2, 6, 8)), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None
        assert np.isfinite(x.grad).all()

    def test_encoder_stack(self):
        encoder = TransformerEncoder(8, 2, num_layers=2, rng=RNG)
        out = encoder(Tensor(RNG.normal(size=(1, 5, 8))))
        assert out.shape == (1, 5, 8)
        assert len(encoder.parameters()) > 0


class TestRecurrent:
    def test_lstm_output_shape(self):
        lstm = LSTM(3, 6, rng=RNG)
        outputs, last = lstm(Tensor(RNG.normal(size=(4, 7, 3))))
        assert outputs.shape == (4, 7, 6)
        assert last.shape == (4, 6)

    def test_gru_output_shape(self):
        gru = GRU(3, 6, num_layers=2, rng=RNG)
        outputs, last = gru(Tensor(RNG.normal(size=(2, 5, 3))))
        assert outputs.shape == (2, 5, 6)
        assert last.shape == (2, 6)

    def test_lstm_gradients_flow_to_params(self):
        lstm = LSTM(2, 4, rng=RNG)
        outputs, _ = lstm(Tensor(RNG.normal(size=(2, 3, 2))))
        outputs.sum().backward()
        assert all(p.grad is not None for p in lstm.parameters())

    def test_lstm_can_fit_memory_task(self):
        # The network must output the first input value at the last step.
        rng = np.random.default_rng(1)
        lstm = LSTM(1, 8, rng=rng)
        head = Linear(8, 1, rng=rng)
        params = lstm.parameters() + head.parameters()
        optimizer = Adam(params, lr=0.02)
        x = rng.normal(size=(32, 5, 1))
        y = x[:, 0, :]
        losses = []
        for _ in range(60):
            optimizer.zero_grad()
            _, last = lstm(Tensor(x))
            loss = F.mse_loss(head(last), Tensor(y))
            loss.backward()
            optimizer.step()
            losses.append(float(loss.data))
        assert losses[-1] < losses[0] * 0.5


class TestOptimizers:
    def test_sgd_converges_on_quadratic(self):
        from repro.nn.layers import Parameter

        target = np.array([3.0, -2.0])
        p = Parameter(np.zeros(2))
        optimizer = SGD([p], lr=0.1, momentum=0.9)
        for _ in range(200):
            optimizer.zero_grad()
            loss = ((p - Tensor(target)) ** 2).sum()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(p.data, target, atol=1e-3)

    def test_adam_converges_on_quadratic(self):
        from repro.nn.layers import Parameter

        target = np.array([1.0, 5.0, -4.0])
        p = Parameter(np.zeros(3))
        optimizer = Adam([p], lr=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            loss = ((p - Tensor(target)) ** 2).sum()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(p.data, target, atol=1e-2)

    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_clip_grad_norm(self):
        from repro.nn.layers import Parameter

        p = Parameter(np.zeros(4))
        p.grad = np.ones(4) * 10.0
        norm_before = clip_grad_norm([p], max_norm=1.0)
        assert norm_before == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_step_lr_schedule(self):
        from repro.nn.layers import Parameter

        optimizer = SGD([Parameter(np.zeros(1))], lr=1.0)
        scheduler = StepLR(optimizer, step_size=2, gamma=0.5)
        scheduler.step()
        assert optimizer.lr == 1.0
        scheduler.step()
        assert optimizer.lr == 0.5


class TestStateDictAndSerialization:
    def test_state_dict_round_trip(self, tmp_path):
        model = Sequential(Linear(4, 8, rng=RNG), Linear(8, 2, rng=RNG))
        path = str(tmp_path / "model.npz")
        save_state_dict(model.state_dict(), path)
        restored = load_state_dict(path)
        fresh = Sequential(Linear(4, 8, rng=np.random.default_rng(99)),
                           Linear(8, 2, rng=np.random.default_rng(98)))
        fresh.load_state_dict(restored)
        x = Tensor(RNG.normal(size=(3, 4)))
        np.testing.assert_allclose(model(x).data, fresh(x).data)

    def test_load_state_dict_shape_mismatch(self):
        model = Linear(4, 2, rng=RNG)
        bad = {name: np.zeros((1, 1)) for name in model.state_dict()}
        with pytest.raises(ValueError):
            model.load_state_dict(bad)

    def test_load_state_dict_missing_key(self):
        model = Linear(4, 2, rng=RNG)
        with pytest.raises(KeyError):
            model.load_state_dict({})

    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2, rng=RNG), Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())


class TestFunctionalLosses:
    def test_mse_loss_value(self):
        pred = Tensor(np.array([1.0, 2.0]))
        target = Tensor(np.array([0.0, 0.0]))
        assert float(F.mse_loss(pred, target).data) == pytest.approx(2.5)

    def test_masked_mse_ignores_unmasked(self):
        pred = Tensor(np.array([1.0, 100.0]))
        target = Tensor(np.array([0.0, 0.0]))
        mask = np.array([1.0, 0.0])
        assert float(F.masked_mse_loss(pred, target, mask).data) == pytest.approx(1.0)

    def test_masked_mse_empty_mask_raises(self):
        with pytest.raises(ValueError):
            F.masked_mse_loss(Tensor([1.0]), Tensor([0.0]), np.array([0.0]))

    def test_binary_cross_entropy_bounds(self):
        pred = Tensor(np.array([0.9, 0.1]))
        target = Tensor(np.array([1.0, 0.0]))
        loss = float(F.binary_cross_entropy(pred, target).data)
        assert 0 < loss < 0.2

    def test_kl_divergence_zero_for_standard_normal(self):
        mu = Tensor(np.zeros((4, 3)))
        log_var = Tensor(np.zeros((4, 3)))
        assert float(F.kl_divergence_normal(mu, log_var).data) == pytest.approx(0.0)

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1]])
