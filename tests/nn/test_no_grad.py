"""Grad-mode machinery: no_grad, inference tensors and the train/eval contract."""

import numpy as np
import pytest

from repro.nn import (
    GRU,
    LSTM,
    Conv1d,
    Dropout,
    Linear,
    Module,
    Sequential,
    Tensor,
    TransformerEncoderLayer,
    is_grad_enabled,
    no_grad,
    set_grad_enabled,
)


class TestGradMode:
    def test_default_is_enabled(self):
        assert is_grad_enabled()

    def test_no_grad_disables_and_restores(self):
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():  # nesting
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_no_grad_as_decorator(self):
        @no_grad()
        def forward(x):
            return x * 2

        out = forward(Tensor(np.ones(3), requires_grad=True))
        assert not out.requires_grad
        assert out.inference

    def test_set_grad_enabled_returns_previous(self):
        previous = set_grad_enabled(False)
        try:
            assert previous is True
            assert not is_grad_enabled()
        finally:
            set_grad_enabled(True)

    def test_ops_under_no_grad_build_no_graph(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with no_grad():
            out = (a * 3 + 1).relu().sum()
        assert not out.requires_grad
        assert out._parents == ()
        assert out._backward is None

    def test_backward_on_inference_tensor_raises(self):
        a = Tensor(np.ones(4), requires_grad=True)
        with no_grad():
            out = (a * 2).sum()
        with pytest.raises(RuntimeError, match="inference tensor"):
            out.backward()

    def test_grad_flow_unaffected_outside_no_grad(self):
        a = Tensor(np.ones(4), requires_grad=True)
        with no_grad():
            (a * 2).sum()
        out = (a * 2).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, 2 * np.ones(4))

    def test_per_tensor_inference_mode_excludes_from_graph(self):
        frozen = Tensor(np.ones(3), requires_grad=True).inference_()
        live = Tensor(np.ones(3), requires_grad=True)
        out = (frozen * live).sum()
        out.backward()
        assert frozen.grad is None
        np.testing.assert_allclose(live.grad, np.ones(3))

    def test_inference_flag_is_reversible(self):
        t = Tensor(np.ones(3), requires_grad=True).inference_()
        assert t.inference
        t.inference_(False)
        out = (t * 2).sum()
        out.backward()
        np.testing.assert_allclose(t.grad, 2 * np.ones(3))


def _forward_twice(module, *args):
    """Forward with grads enabled, then under no_grad; return both outputs."""
    with_grad = module(*args)
    with no_grad():
        without_grad = module(*args)
    return with_grad, without_grad


class TestNoGradEquivalence:
    """no_grad forward passes are bit-identical to grad-enabled passes."""

    def setup_method(self):
        self.rng = np.random.default_rng(0)

    def test_linear(self):
        layer = Linear(6, 4, rng=self.rng)
        x = Tensor(self.rng.normal(size=(5, 6)))
        a, b = _forward_twice(layer, x)
        assert a.requires_grad and not b.requires_grad
        np.testing.assert_array_equal(a.data, b.data)

    def test_conv1d(self):
        layer = Conv1d(3, 5, kernel_size=3, rng=self.rng)
        x = Tensor(self.rng.normal(size=(2, 3, 16)))
        a, b = _forward_twice(layer, x)
        np.testing.assert_array_equal(a.data, b.data)

    def test_attention(self):
        layer = TransformerEncoderLayer(8, 2, rng=self.rng)
        x = Tensor(self.rng.normal(size=(2, 7, 8)))
        a, b = _forward_twice(layer, x)
        assert a.requires_grad and not b.requires_grad
        np.testing.assert_array_equal(a.data, b.data)

    def test_lstm(self):
        layer = LSTM(4, 6, rng=self.rng)
        x = Tensor(self.rng.normal(size=(3, 9, 4)))
        (a_seq, _), (b_seq, _) = _forward_twice(layer, x)
        np.testing.assert_array_equal(a_seq.data, b_seq.data)

    def test_gru(self):
        layer = GRU(4, 6, rng=self.rng)
        x = Tensor(self.rng.normal(size=(3, 9, 4)))
        (a_seq, _), (b_seq, _) = _forward_twice(layer, x)
        np.testing.assert_array_equal(a_seq.data, b_seq.data)

    def test_imtransformer_denoiser(self):
        from repro.models import ImTransformer

        model = ImTransformer(num_features=3, hidden_dim=8, num_blocks=2,
                              num_heads=2, rng=self.rng)
        x = self.rng.normal(size=(2, 2, 3, 12))
        steps = np.array([1, 5])
        policies = np.array([0, 1])
        a = model(x, steps, policies)
        with no_grad():
            b = model(x, steps, policies)
        assert a.requires_grad and not b.requires_grad
        np.testing.assert_array_equal(a.data, b.data)


class _Nested(Module):
    """Module tree with children behind attribute, list and dict containers."""

    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.direct = Linear(2, 2, rng=rng)
        self.in_list = [Linear(2, 2, rng=rng), Dropout(0.5, rng=rng)]
        self.in_dict = {"seq": Sequential(Linear(2, 2, rng=rng), Dropout(0.5, rng=rng))}


class TestTrainEvalContract:
    def test_eval_reaches_every_descendant(self):
        model = _Nested()
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_train_accepts_mode_argument(self):
        model = _Nested()
        assert model.train(False) is model
        assert all(not m.training for m in model.modules())

    def test_modules_discovers_dict_children(self):
        model = _Nested()
        found = {type(m).__name__ for m in model.modules()}
        assert {"_Nested", "Linear", "Dropout", "Sequential"} <= found

    def test_named_parameters_discovers_dict_children(self):
        model = _Nested()
        names = dict(model.named_parameters())
        assert any(name.startswith("in_dict.seq.") for name in names)

    def test_shared_submodule_yielded_once(self):
        shared = Linear(2, 2, rng=np.random.default_rng(0))

        class Holder(Module):
            def __init__(self):
                super().__init__()
                self.a = shared
                self.b = shared

        holder = Holder()
        assert sum(1 for m in holder.modules() if m is shared) == 1

    def test_eval_disables_dropout_everywhere(self):
        model = _Nested()
        model.eval()
        x = Tensor(np.ones((4, 2)))
        out = model.in_dict["seq"](x)
        again = model.in_dict["seq"](x)
        np.testing.assert_array_equal(out.data, again.data)

    def test_eval_inference_freezes_parameters(self):
        model = _Nested()
        model.eval(inference=True)
        assert all(p.inference for p in model.parameters())
        x = Tensor(np.ones((4, 2)))
        out = model.direct(x)
        assert not out.requires_grad  # graph-free without a no_grad block

    def test_train_thaws_inference_parameters(self):
        model = _Nested()
        model.eval(inference=True)
        model.train()
        assert all(not p.inference for p in model.parameters())
        out = model.direct(Tensor(np.ones((4, 2))))
        assert out.requires_grad
