"""Shared-memory parameter transport: layout, publish/attach, lifecycle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn.shm import (
    HEADER_BYTES,
    SharedParameterBlock,
    SharedParameterSpec,
    SharedParameterView,
)


def _params(seed=0, shapes=((3, 4), (4,), (2, 3, 2))):
    rng = np.random.default_rng(seed)
    return [Tensor(rng.standard_normal(shape)) for shape in shapes]


class TestBlockLayout:
    def test_sized_to_header_plus_parameters(self):
        params = _params()
        with SharedParameterBlock(params) as block:
            expected = HEADER_BYTES + sum(p.data.size * 8 for p in params)
            assert block.nbytes == expected

    def test_spec_is_picklable_and_carries_shapes(self):
        import pickle

        params = _params()
        with SharedParameterBlock(params) as block:
            spec = pickle.loads(pickle.dumps(block.spec()))
            assert isinstance(spec, SharedParameterSpec)
            assert spec.shapes == tuple(p.data.shape for p in params)
            assert spec.num_parameters == len(params)

    def test_rejects_non_float64(self):
        with pytest.raises(TypeError, match="float64"):
            SharedParameterBlock([np.zeros(3, dtype=np.float32)])


class TestPublishAttach:
    def test_round_trip_through_a_view(self):
        params = _params()
        with SharedParameterBlock(params) as block:
            block.publish(params)
            view = SharedParameterView(block.spec())
            try:
                for param, slot in zip(params, view.slots):
                    assert np.array_equal(param.data, slot)
            finally:
                view.close()

    def test_attach_to_swaps_replica_data_in_place(self):
        params = _params(seed=1)
        replicas = _params(seed=2)
        with SharedParameterBlock(params) as block:
            block.publish(params)
            view = SharedParameterView(block.spec())
            try:
                view.attach_to(replicas)
                for param, replica in zip(params, replicas):
                    assert np.array_equal(param.data, replica.data)
                # A fresh publish is visible with no further transfer.
                params[0].data = params[0].data + 1.0
                block.publish(params)
                assert np.array_equal(params[0].data, replicas[0].data)
            finally:
                view.close()

    def test_generation_counts_publishes(self):
        params = _params()
        with SharedParameterBlock(params) as block:
            assert block.generation == 0
            assert block.publish(params) == 1
            assert block.publish(params) == 2
            view = SharedParameterView(block.spec())
            try:
                assert view.generation == 2
                view.check_generation(2)
                with pytest.raises(RuntimeError, match="stale"):
                    view.check_generation(1)
            finally:
                view.close()

    def test_publish_rejects_count_and_shape_mismatches(self):
        params = _params()
        with SharedParameterBlock(params) as block:
            with pytest.raises(ValueError, match="parameters"):
                block.publish(params[:-1])
            bad = _params(shapes=((3, 4), (4,), (9,)))
            with pytest.raises(ValueError, match="shape"):
                block.publish(bad)

    def test_attach_rejects_count_and_shape_mismatches(self):
        params = _params()
        with SharedParameterBlock(params) as block:
            view = SharedParameterView(block.spec())
            try:
                with pytest.raises(ValueError, match="build"):
                    view.attach_to(params[:-1])
                with pytest.raises(ValueError, match="shape"):
                    view.attach_to(_params(shapes=((3, 4), (4,), (9,))))
            finally:
                view.close()


class TestLifecycle:
    def test_block_close_is_idempotent_and_unlinks(self):
        params = _params()
        block = SharedParameterBlock(params)
        name = block.name
        block.close()
        block.close()
        with pytest.raises(FileNotFoundError):
            SharedParameterView(SharedParameterSpec(
                name=name, shapes=tuple(p.data.shape for p in params)))

    def test_closed_block_refuses_publish(self):
        block = SharedParameterBlock(_params())
        block.close()
        with pytest.raises(RuntimeError, match="closed"):
            block.publish(_params())

    def test_view_close_is_idempotent_and_never_unlinks(self):
        params = _params()
        with SharedParameterBlock(params) as block:
            view = SharedParameterView(block.spec())
            view.close()
            view.close()
            # The segment must survive a view detach: the parent owns it.
            second = SharedParameterView(block.spec())
            second.close()
