"""Unit tests for the autograd Tensor: forward values and gradient correctness.

Gradients are verified against central finite differences for every core
operation, which protects all downstream models from silent autograd bugs.
"""

import numpy as np
import pytest

from repro.nn import Tensor, concat, stack, where


RNG = np.random.default_rng(0)


def numerical_grad(func, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of a scalar-valued ``func``."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        high = func(x)
        flat[i] = original - eps
        low = func(x)
        flat[i] = original
        grad_flat[i] = (high - low) / (2 * eps)
    return grad


def check_unary(op, shape=(3, 4), positive=False, tol=1e-5):
    data = RNG.normal(size=shape)
    if positive:
        data = np.abs(data) + 0.5
    t = Tensor(data.copy(), requires_grad=True)
    out = op(t).sum()
    out.backward()

    def scalar(x):
        return float(op(Tensor(x)).sum().data)

    expected = numerical_grad(scalar, data.copy())
    np.testing.assert_allclose(t.grad, expected, rtol=tol, atol=tol)


class TestForwardValues:
    def test_add_matches_numpy(self):
        a, b = RNG.normal(size=(2, 3)), RNG.normal(size=(2, 3))
        assert np.allclose((Tensor(a) + Tensor(b)).data, a + b)

    def test_matmul_matches_numpy(self):
        a, b = RNG.normal(size=(4, 5)), RNG.normal(size=(5, 2))
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(RNG.normal(size=(3, 7)))
        out = x.softmax(axis=-1).data
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(3), atol=1e-12)

    def test_scalar_coercion(self):
        out = Tensor([1.0, 2.0]) * 3
        assert np.allclose(out.data, [3.0, 6.0])

    def test_detach_cuts_graph(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad

    def test_item_returns_float(self):
        assert Tensor([2.5]).item() == pytest.approx(2.5)


class TestUnaryGradients:
    def test_exp(self):
        check_unary(lambda t: t.exp())

    def test_log(self):
        check_unary(lambda t: t.log(), positive=True)

    def test_tanh(self):
        check_unary(lambda t: t.tanh())

    def test_sigmoid(self):
        check_unary(lambda t: t.sigmoid())

    def test_relu(self):
        check_unary(lambda t: t.relu())

    def test_gelu(self):
        check_unary(lambda t: t.gelu())

    def test_silu(self):
        check_unary(lambda t: t.silu())

    def test_abs(self):
        check_unary(lambda t: t.abs())

    def test_pow(self):
        check_unary(lambda t: t ** 3)

    def test_sqrt(self):
        check_unary(lambda t: t.sqrt(), positive=True)

    def test_softmax(self):
        check_unary(lambda t: (t.softmax(axis=-1) * Tensor(np.arange(12.0).reshape(3, 4))))

    def test_mean_axis(self):
        check_unary(lambda t: t.mean(axis=0))

    def test_max_axis(self):
        check_unary(lambda t: t.max(axis=1))

    def test_reshape_transpose(self):
        check_unary(lambda t: (t.reshape(4, 3).transpose(1, 0) * 2.0))

    def test_getitem(self):
        check_unary(lambda t: t[1:, :2])

    def test_pad(self):
        check_unary(lambda t: t.pad(((1, 1), (0, 2))))

    def test_clip(self):
        check_unary(lambda t: t.clip(-0.5, 0.5))

    def test_leaky_relu(self):
        check_unary(lambda t: t.leaky_relu(0.1))

    def test_repeat(self):
        check_unary(lambda t: t.repeat(3, axis=1))

    def test_expand_squeeze(self):
        check_unary(lambda t: t.expand_dims(0).squeeze(0))


class TestBinaryGradients:
    def test_mul_broadcast(self):
        a = RNG.normal(size=(3, 4))
        b = RNG.normal(size=(4,))
        ta = Tensor(a.copy(), requires_grad=True)
        tb = Tensor(b.copy(), requires_grad=True)
        (ta * tb).sum().backward()
        expected_a = numerical_grad(lambda x: float((Tensor(x) * Tensor(b)).sum().data), a.copy())
        expected_b = numerical_grad(lambda x: float((Tensor(a) * Tensor(x)).sum().data), b.copy())
        np.testing.assert_allclose(ta.grad, expected_a, atol=1e-5)
        np.testing.assert_allclose(tb.grad, expected_b, atol=1e-5)

    def test_div(self):
        a = RNG.normal(size=(2, 3))
        b = np.abs(RNG.normal(size=(2, 3))) + 1.0
        ta = Tensor(a.copy(), requires_grad=True)
        tb = Tensor(b.copy(), requires_grad=True)
        (ta / tb).sum().backward()
        expected_a = numerical_grad(lambda x: float((Tensor(x) / Tensor(b)).sum().data), a.copy())
        expected_b = numerical_grad(lambda x: float((Tensor(a) / Tensor(x)).sum().data), b.copy())
        np.testing.assert_allclose(ta.grad, expected_a, atol=1e-5)
        np.testing.assert_allclose(tb.grad, expected_b, atol=1e-5)

    def test_matmul_2d(self):
        a = RNG.normal(size=(3, 4))
        b = RNG.normal(size=(4, 2))
        ta = Tensor(a.copy(), requires_grad=True)
        tb = Tensor(b.copy(), requires_grad=True)
        (ta @ tb).sum().backward()
        expected_a = numerical_grad(lambda x: float((Tensor(x) @ Tensor(b)).sum().data), a.copy())
        expected_b = numerical_grad(lambda x: float((Tensor(a) @ Tensor(x)).sum().data), b.copy())
        np.testing.assert_allclose(ta.grad, expected_a, atol=1e-5)
        np.testing.assert_allclose(tb.grad, expected_b, atol=1e-5)

    def test_matmul_batched(self):
        a = RNG.normal(size=(2, 3, 4))
        b = RNG.normal(size=(2, 4, 5))
        ta = Tensor(a.copy(), requires_grad=True)
        tb = Tensor(b.copy(), requires_grad=True)
        (ta @ tb).sum().backward()
        expected_a = numerical_grad(lambda x: float((Tensor(x) @ Tensor(b)).sum().data), a.copy())
        expected_b = numerical_grad(lambda x: float((Tensor(a) @ Tensor(x)).sum().data), b.copy())
        np.testing.assert_allclose(ta.grad, expected_a, atol=1e-5)
        np.testing.assert_allclose(tb.grad, expected_b, atol=1e-5)

    def test_matmul_broadcast_batch(self):
        a = RNG.normal(size=(1, 3, 4))
        b = RNG.normal(size=(2, 4, 5))
        ta = Tensor(a.copy(), requires_grad=True)
        tb = Tensor(b.copy(), requires_grad=True)
        (ta @ tb).sum().backward()
        expected_a = numerical_grad(lambda x: float((Tensor(x) @ Tensor(b)).sum().data), a.copy())
        np.testing.assert_allclose(ta.grad, expected_a, atol=1e-5)

    def test_sub_rsub(self):
        a = RNG.normal(size=(3,))
        ta = Tensor(a.copy(), requires_grad=True)
        (1.0 - ta).sum().backward()
        np.testing.assert_allclose(ta.grad, -np.ones(3))


class TestGraphStructure:
    def test_reused_tensor_accumulates(self):
        t = Tensor([2.0], requires_grad=True)
        out = t * t + t
        out.backward()
        # d/dt (t^2 + t) = 2t + 1 = 5
        np.testing.assert_allclose(t.grad, [5.0])

    def test_diamond_graph(self):
        t = Tensor([1.5], requires_grad=True)
        a = t * 2.0
        b = t * 3.0
        (a * b).sum().backward()
        # d/dt (6 t^2) = 12 t = 18
        np.testing.assert_allclose(t.grad, [18.0])

    def test_backward_twice_accumulates(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        (t * 2.0).sum().backward()
        first = t.grad.copy()
        out = (t * 2.0).sum()
        out.backward()
        np.testing.assert_allclose(t.grad, 2 * first)

    def test_backward_on_non_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).sum().backward()

    def test_grad_shape_mismatch_raises(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        out = t * 2.0
        with pytest.raises(ValueError):
            out.backward(np.ones(3))

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2.0).sum().backward()
        t.zero_grad()
        assert t.grad is None


class TestCombinators:
    def test_concat_gradient(self):
        a = RNG.normal(size=(2, 3))
        b = RNG.normal(size=(2, 2))
        ta = Tensor(a.copy(), requires_grad=True)
        tb = Tensor(b.copy(), requires_grad=True)
        weights = np.arange(10.0).reshape(2, 5)
        (concat([ta, tb], axis=1) * Tensor(weights)).sum().backward()
        np.testing.assert_allclose(ta.grad, weights[:, :3])
        np.testing.assert_allclose(tb.grad, weights[:, 3:])

    def test_stack_gradient(self):
        a = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        b = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        stack([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.ones(3))

    def test_where_gradient(self):
        cond = np.array([True, False, True])
        a = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        b = Tensor(np.array([4.0, 5.0, 6.0]), requires_grad=True)
        where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])

    def test_sum_keepdims(self):
        t = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        t.sum(axis=1, keepdims=True).sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 3)))

    def test_var(self):
        data = RNG.normal(size=(4, 5))
        t = Tensor(data)
        np.testing.assert_allclose(t.var(axis=1).data, data.var(axis=1), atol=1e-10)
