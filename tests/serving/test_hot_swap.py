"""Hot-swap edge cases: mid-stream swaps, worker survival, broken rollbacks."""

import numpy as np
import pytest

from repro import ImDiffusionConfig, ImDiffusionDetector
from repro.adaptation import AdaptationConfig, AdaptationController, training_tail_reference
from repro.serving import DetectorService, ModelRegistry, ServingConfig

WINDOW = 16


def make_series(length, channels=3, seed=0, shift=0.0):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    base = np.sin(2 * np.pi * t / 32)[:, None] * np.ones((1, channels))
    return base + 0.1 * rng.standard_normal((length, channels)) + shift


def make_detector(seed=0, epochs=1, **overrides):
    config = ImDiffusionConfig(
        window_size=WINDOW, num_steps=4, epochs=epochs, hidden_dim=8,
        num_blocks=1, num_heads=2, max_train_windows=12,
        num_masked_windows=2, num_unmasked_windows=2,
        deterministic_inference=True, collect="x0", train_stride=8,
        seed=seed, **overrides)
    return ImDiffusionDetector(config).fit(make_series(200, seed=1))


@pytest.fixture(scope="module")
def detector():
    return make_detector()


@pytest.fixture(scope="module")
def other_detector():
    # Same shapes, different weights (longer training, different seed).
    return make_detector(seed=7, epochs=2)


def clone(detector):
    return ImDiffusionDetector.from_checkpoint(*detector.to_checkpoint())


def stream_through(service, stream, swap_at=None, swap_source=None, chunk=8):
    """Ingest ``stream`` in chunks, optionally hot-swapping mid-stream.

    Returns ``(view, generations, swap_mark)`` where ``swap_mark`` is how
    far scoring had progressed when the swap happened — points beyond it
    (including windows still queued in the micro-batcher) are scored by the
    *new* weights.
    """
    generations = []
    swap_mark = None
    for start in range(0, stream.shape[0], chunk):
        service.ingest("t0", stream[start:start + chunk])
        if swap_at is not None and start == swap_at:
            swap_mark = service.scorer.scored_until("t0")
            generations.append(service.hot_swap(swap_source))
    service.drain()
    return service.tenant_view("t0"), generations, swap_mark


# ----------------------------------------------------------------------
# Identity-swap invariance (the rollback primitive), in-process
# ----------------------------------------------------------------------
def test_identity_swap_mid_stream_is_bit_identical(detector):
    stream = make_series(96, seed=5)
    plain = DetectorService(clone(detector), ServingConfig(
        flush_size=4, flush_age=3600.0, history=96))
    plain.register_tenant("t0")
    with plain:
        base_view, _, _ = stream_through(plain, stream)

    swapped = DetectorService(clone(detector), ServingConfig(
        flush_size=4, flush_age=3600.0, history=96))
    swapped.register_tenant("t0")
    with swapped:
        view, generations, _ = stream_through(
            swapped, stream, swap_at=48, swap_source=clone(detector))
    assert generations == [0]  # in-process reducer has no generation counter
    assert swapped.metrics.hot_swaps == 1
    assert np.array_equal(base_view.scores, view.scores, equal_nan=True)
    assert np.array_equal(base_view.labels, view.labels)


def test_real_swap_mid_stream_changes_only_later_scores(detector, other_detector):
    stream = make_series(96, seed=5)
    plain = DetectorService(clone(detector), ServingConfig(
        flush_size=4, flush_age=3600.0, history=96))
    plain.register_tenant("t0")
    with plain:
        base_view, _, _ = stream_through(plain, stream)

    swapped = DetectorService(clone(detector), ServingConfig(
        flush_size=4, flush_age=3600.0, history=96))
    swapped.register_tenant("t0")
    with swapped:
        view, _, mark = stream_through(
            swapped, stream, swap_at=48, swap_source=clone(other_detector))
    # Everything scored before the swap is untouched...
    assert np.array_equal(base_view.scores[:mark], view.scores[:mark],
                          equal_nan=True)
    # ...and points after it (including windows that were still queued at
    # swap time) are scored by the new weights.
    assert not np.array_equal(base_view.scores[mark:], view.scores[mark:],
                              equal_nan=True)


# ----------------------------------------------------------------------
# Publish-while-scoring under multiprocess workers
# ----------------------------------------------------------------------
def test_swap_under_workers_bumps_generation_without_restarts(detector, other_detector):
    stream = make_series(96, seed=5)
    service = DetectorService(clone(detector), ServingConfig(
        flush_size=4, flush_age=3600.0, history=96, score_workers=2))
    service.register_tenant("t0")
    with service:
        pids_before = service.scorer.worker_pids
        assert len(pids_before) == 2
        assert service.scorer.parameter_generation == 1  # initial publish
        view, generations, _ = stream_through(
            service, stream, swap_at=48, swap_source=clone(other_detector))
        assert generations == [2]  # publish bumped the shared generation
        assert service.scorer.parameter_generation == 2
        # Scoring continued on the same worker processes: no restarts.
        assert service.scorer.worker_pids == pids_before
    assert service.metrics.hot_swaps == 1
    assert view.end == 96


def test_identity_swap_under_workers_is_bit_identical(detector):
    stream = make_series(96, seed=6)

    def run(swap):
        service = DetectorService(clone(detector), ServingConfig(
            flush_size=4, flush_age=3600.0, history=96, score_workers=2))
        service.register_tenant("t0")
        with service:
            view, _, _ = stream_through(
                service, stream,
                swap_at=48 if swap else None,
                swap_source=clone(detector) if swap else None)
        return view

    base, swapped = run(False), run(True)
    assert np.array_equal(base.scores, swapped.scores, equal_nan=True)
    assert np.array_equal(base.labels, swapped.labels)


# ----------------------------------------------------------------------
# Swap validation
# ----------------------------------------------------------------------
def test_swap_rejects_incompatible_detectors(detector):
    service = DetectorService(clone(detector), ServingConfig(
        flush_size=4, flush_age=3600.0, history=64))
    service.register_tenant("t0")
    with service:
        narrow = ImDiffusionDetector(ImDiffusionConfig(
            window_size=WINDOW, num_steps=4, epochs=1, hidden_dim=8,
            num_blocks=1, num_heads=2, max_train_windows=12,
            num_masked_windows=2, num_unmasked_windows=2,
            deterministic_inference=True, collect="x0", seed=0))
        narrow.fit(make_series(120, channels=2, seed=2))
        with pytest.raises(ValueError, match="feature mismatch"):
            service.hot_swap(narrow)
        unfitted = ImDiffusionDetector(detector.config)
        with pytest.raises(ValueError, match="fitted"):
            service.hot_swap(unfitted)
    assert service.metrics.hot_swaps == 0


# ----------------------------------------------------------------------
# Rollback to a version whose checkpoint was deleted
# ----------------------------------------------------------------------
def test_rollback_to_deleted_version_raises_and_preserves_weights(
        detector, other_detector, tmp_path):
    registry = ModelRegistry(tmp_path)
    service = DetectorService(clone(detector), ServingConfig(
        flush_size=4, flush_age=3600.0, history=64))
    service.register_tenant("t0")
    reference = training_tail_reference(detector, make_series(200, seed=1),
                                        points=96)
    controller = AdaptationController(
        service, reference, registry=registry, model_name="served",
        config=AdaptationConfig(policy="sensitive", min_adapt_windows=2,
                                adapt_epochs=1, reference_points=96))
    assert registry.versions("served") == [1]
    registry.publish_version("served", other_detector)
    assert registry.versions("served") == [1, 2]

    with service:
        service.ingest("t0", make_series(48, seed=9))
        service.drain()
        before = {name: param.data.copy()
                  for name, param
                  in service.scorer.detector._imputer.model.named_parameters()}
        registry.delete(ModelRegistry.version_name("served", 2))
        with pytest.raises(KeyError):
            controller.rollback_to(2)
        after = {name: param.data
                 for name, param
                 in service.scorer.detector._imputer.model.named_parameters()}
        assert all(np.array_equal(before[name], after[name]) for name in before)
        assert service.metrics.hot_swaps == 0
        # An existing version still rolls back fine.
        generation = controller.rollback_to(1)
        assert generation == 0
        assert service.metrics.hot_swaps == 1


def test_rollback_without_registry_is_an_error(detector):
    service = DetectorService(clone(detector), ServingConfig(history=64))
    reference = training_tail_reference(detector, make_series(200, seed=1),
                                        points=96)
    controller = AdaptationController(service, reference)
    with pytest.raises(ValueError, match="registry"):
        controller.rollback_to(1)
    service.close()
