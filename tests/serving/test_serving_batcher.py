"""Tests for the cross-tenant micro-batcher (flush triggers, backpressure)."""

import numpy as np
import pytest

from repro.serving import MicroBatcher, PendingWindow

WINDOW = 4


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


def make_request(tenant="a", start=0):
    return PendingWindow(tenant=tenant, start=start,
                         window=np.zeros((WINDOW, 2)))


class RecordingScorer:
    """Stub score_fn recording every batch it is asked to score."""

    def __init__(self, num_steps=3):
        self.num_steps = num_steps
        self.batches = []

    def __call__(self, windows):
        self.batches.append(windows.shape[0])
        batch = windows.shape[0]
        return {k: np.full((batch, windows.shape[1]), float(k))
                for k in range(1, self.num_steps + 1)}


class TestFlushBySize:
    def test_maybe_flush_fires_at_flush_size(self):
        scorer = RecordingScorer()
        batcher = MicroBatcher(scorer, flush_size=3, flush_age=60.0)
        batcher.submit(make_request(start=0))
        batcher.submit(make_request(start=4))
        assert batcher.maybe_flush() is None  # below flush_size
        batcher.submit(make_request(start=8))
        result = batcher.maybe_flush()
        assert result is not None
        assert result.reason == "size"
        assert result.num_windows == 3
        assert scorer.batches == [3]
        assert batcher.queue_depth == 0

    def test_batches_coalesce_across_tenants(self):
        scorer = RecordingScorer()
        batcher = MicroBatcher(scorer, flush_size=2, flush_age=60.0)
        batcher.submit(make_request(tenant="a"))
        batcher.submit(make_request(tenant="b"))
        result = batcher.maybe_flush()
        assert [r.tenant for r in result.requests] == ["a", "b"]


class TestFlushByAge:
    def test_maybe_flush_fires_after_flush_age(self):
        clock = FakeClock()
        scorer = RecordingScorer()
        batcher = MicroBatcher(scorer, flush_size=10, flush_age=5.0, clock=clock)
        batcher.submit(make_request())
        assert batcher.maybe_flush() is None
        clock.advance(4.9)
        assert batcher.maybe_flush() is None
        clock.advance(0.2)
        result = batcher.maybe_flush()
        assert result is not None and result.reason == "age"
        assert batcher.queue_depth == 0

    def test_empty_queue_never_age_flushes(self):
        clock = FakeClock()
        batcher = MicroBatcher(RecordingScorer(), flush_size=4, flush_age=1.0,
                               clock=clock)
        clock.advance(100.0)
        assert batcher.maybe_flush() is None


class TestBackpressure:
    def test_full_queue_forces_synchronous_flush(self):
        """Producers that outrun the flushing loop hit the queue bound."""
        scorer = RecordingScorer()
        batcher = MicroBatcher(scorer, flush_size=3, flush_age=60.0, max_pending=3)
        for i in range(3):
            assert batcher.submit(make_request(start=i * WINDOW)) is None
        result = batcher.submit(make_request(start=99))
        assert batcher.stats.backpressure_events == 1
        # The backpressure flush drained the 3 queued windows before the new
        # one was accepted; the new one stays pending afterwards.
        assert scorer.batches[0] == 3
        assert result is not None and result.reason == "backpressure"
        assert batcher.queue_depth == 1

    def test_queue_never_exceeds_max_pending(self):
        scorer = RecordingScorer()
        batcher = MicroBatcher(scorer, flush_size=4, flush_age=60.0, max_pending=4)
        for i in range(50):
            batcher.submit(make_request(start=i * WINDOW))
            assert batcher.queue_depth <= 4


class TestResults:
    def test_on_result_routes_per_window_errors(self):
        received = []
        scorer = RecordingScorer(num_steps=2)
        batcher = MicroBatcher(scorer, flush_size=2, flush_age=60.0,
                               on_result=lambda req, errs: received.append((req, errs)))
        batcher.submit(make_request(tenant="a", start=0))
        batcher.submit(make_request(tenant="b", start=4))
        batcher.maybe_flush()
        assert len(received) == 2
        (req_a, errs_a), (req_b, errs_b) = received
        assert req_a.tenant == "a" and req_b.tenant == "b"
        assert set(errs_a) == {1, 2}
        assert errs_a[1].shape == (WINDOW,)
        assert np.all(errs_a[2] == 2.0)

    def test_forced_flush_of_empty_queue_is_noop(self):
        batcher = MicroBatcher(RecordingScorer(), flush_size=4, flush_age=60.0)
        assert batcher.flush() is None

    def test_stats_accumulate(self):
        batcher = MicroBatcher(RecordingScorer(), flush_size=2, flush_age=60.0)
        for i in range(6):
            batcher.submit(make_request(start=i * WINDOW))
            batcher.maybe_flush()
        assert batcher.stats.batches_flushed == 3
        assert batcher.stats.windows_scored == 6
        assert batcher.stats.flush_reasons == {"size": 3}


class TestValidation:
    def test_invalid_parameters(self):
        scorer = RecordingScorer()
        with pytest.raises(ValueError):
            MicroBatcher(scorer, flush_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(scorer, flush_size=4, max_pending=2)
        with pytest.raises(ValueError):
            MicroBatcher(scorer, flush_age=0.0)
