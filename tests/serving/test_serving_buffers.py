"""Tests for the bounded ring buffer underlying the serving layer."""

import numpy as np
import pytest

from repro.serving import RingBuffer


class TestRingBuffer:
    def test_append_and_view(self):
        buffer = RingBuffer(capacity=8, width=2)
        rows = np.arange(10).reshape(5, 2).astype(float)
        evicted = buffer.append(rows)
        assert evicted == 0
        assert buffer.start_index == 0
        assert buffer.end_index == 5
        assert np.array_equal(buffer.view(), rows)

    def test_eviction_past_capacity(self):
        buffer = RingBuffer(capacity=4, width=1)
        buffer.append(np.arange(10).reshape(10, 1).astype(float))
        assert buffer.start_index == 6
        assert buffer.end_index == 10
        assert buffer.evicted == 6
        assert np.array_equal(buffer.view().ravel(), [6.0, 7.0, 8.0, 9.0])

    def test_append_returns_newly_evicted(self):
        buffer = RingBuffer(capacity=4, width=1)
        assert buffer.append(np.zeros((3, 1))) == 0
        assert buffer.append(np.zeros((3, 1))) == 2

    def test_absolute_indexing_survives_wraparound(self):
        buffer = RingBuffer(capacity=4, width=1)
        buffer.append(np.arange(7).reshape(7, 1).astype(float))
        assert np.array_equal(buffer.view(4, 6).ravel(), [4.0, 5.0])

    def test_view_outside_retained_range_raises(self):
        buffer = RingBuffer(capacity=4, width=1)
        buffer.append(np.arange(6).reshape(6, 1).astype(float))
        with pytest.raises(IndexError):
            buffer.view(0, 3)  # rows 0..1 already evicted
        with pytest.raises(IndexError):
            buffer.view(4, 7)  # beyond the end

    def test_write_at_overwrites_retained_rows(self):
        buffer = RingBuffer(capacity=8, width=1)
        buffer.append(np.zeros((6, 1)))
        buffer.write_at(2, np.full((3, 1), 9.0))
        assert np.array_equal(buffer.view().ravel(), [0, 0, 9, 9, 9, 0])

    def test_write_at_extends_the_stream(self):
        buffer = RingBuffer(capacity=8, width=1)
        buffer.append(np.zeros((4, 1)))
        buffer.write_at(2, np.full((4, 1), 7.0))
        assert buffer.end_index == 6
        assert np.array_equal(buffer.view().ravel(), [0, 0, 7, 7, 7, 7])

    def test_write_at_zero_fills_gaps(self):
        buffer = RingBuffer(capacity=8, width=1)
        buffer.append(np.full((2, 1), 3.0))
        buffer.write_at(5, np.ones((1, 1)))
        assert buffer.end_index == 6
        assert np.array_equal(buffer.view().ravel(), [3, 3, 0, 0, 0, 1])

    def test_write_at_negative_raises(self):
        buffer = RingBuffer(capacity=8, width=1)
        with pytest.raises(IndexError):
            buffer.write_at(-1, np.ones((1, 1)))

    def test_tail(self):
        buffer = RingBuffer(capacity=4, width=1)
        buffer.append(np.arange(6).reshape(6, 1).astype(float))
        assert np.array_equal(buffer.tail(2).ravel(), [4.0, 5.0])
        assert buffer.tail(100).shape[0] == 4

    def test_width_mismatch_raises(self):
        buffer = RingBuffer(capacity=4, width=3)
        with pytest.raises(ValueError):
            buffer.append(np.zeros((2, 2)))
