"""Tests for the reworked online harness and the `repro serve` CLI command."""

import numpy as np
import pytest

from repro import ImDiffusionConfig, ImDiffusionDetector
from repro.cli import build_parser, main
from repro.data import MicroserviceLatencySimulator, ProductionConfig
from repro.production import LegacyThresholdDetector, run_online_evaluation


@pytest.fixture(scope="module")
def trace():
    sim = MicroserviceLatencySimulator(ProductionConfig(
        num_services=4, train_days=2, test_days=2, seed=5))
    return sim.generate()


class TestBoundedOnlineEvaluation:
    def test_matches_full_history_when_buffer_covers_stream(self, trace):
        """With eval_buffer >= stream length the bounded path reproduces the
        seed full-history behaviour exactly (legacy detector is deterministic)."""
        bounded = run_online_evaluation(LegacyThresholdDetector(seed=0), trace,
                                        rescore_every=32, eval_buffer=10_000)
        # Reference: the seed algorithm, inlined.
        detector = LegacyThresholdDetector(seed=0)
        detector.fit(trace.train)
        length = trace.test.shape[0]
        labels = np.zeros(length, dtype=np.int64)
        processed = 0
        while processed < length:
            next_block = min(processed + 32, length)
            prediction = detector.predict(trace.test[:next_block])
            labels[processed:next_block] = prediction.labels[processed:next_block]
            processed = next_block
        assert np.array_equal(bounded.labels, labels)

    def test_small_buffer_still_produces_full_labels(self, trace):
        evaluation = run_online_evaluation(LegacyThresholdDetector(seed=0),
                                           trace, rescore_every=16,
                                           eval_buffer=64)
        assert evaluation.labels.shape == trace.test_labels.shape
        assert 0.0 <= evaluation.metrics.f1 <= 1.0

    def test_invalid_parameters_raise(self, trace):
        with pytest.raises(ValueError):
            run_online_evaluation(LegacyThresholdDetector(seed=0), trace,
                                  rescore_every=0)
        with pytest.raises(ValueError):
            run_online_evaluation(LegacyThresholdDetector(seed=0), trace,
                                  rescore_every=64, eval_buffer=32)

    def test_imdiffusion_uses_incremental_path(self, trace):
        config = ImDiffusionConfig(
            window_size=16, num_steps=4, epochs=1, hidden_dim=8, num_blocks=1,
            num_heads=2, max_train_windows=8, num_masked_windows=2,
            num_unmasked_windows=2, deterministic_inference=True,
            collect="x0", seed=0)
        log_trace = type(trace)(train=np.log(trace.train),
                                test=np.log(trace.test),
                                test_labels=trace.test_labels)
        evaluation = run_online_evaluation(ImDiffusionDetector(config),
                                           log_trace, rescore_every=24,
                                           eval_buffer=128)
        assert evaluation.labels.shape == trace.test_labels.shape
        assert evaluation.scores.shape == trace.test_labels.shape
        assert evaluation.points_per_second > 0
        # The whole stream must have been scored, not just whole windows.
        assert evaluation.scores[-1] != 0.0 or evaluation.scores[-2] != 0.0


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.tenants == 4
        assert args.flush_size == 8
        assert args.model_name == "latency-monitor"

    def test_serve_runs_small(self, capsys, tmp_path):
        exit_code = main([
            "serve", "--tenants", "2", "--samples", "96",
            "--window-size", "16", "--num-steps", "4", "--epochs", "1",
            "--hidden-dim", "8", "--history", "128",
            "--registry", str(tmp_path / "registry"),
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "tenant-0" in output and "tenant-1" in output
        assert "points_per_second" in output
        assert "batches_flushed" in output

    def test_serve_rejects_mismatched_warm_model(self, capsys, tmp_path):
        registry_dir = str(tmp_path / "registry")
        base = ["serve", "--tenants", "1", "--samples", "48",
                "--window-size", "16", "--num-steps", "4", "--epochs", "1",
                "--hidden-dim", "8", "--history", "128",
                "--registry", registry_dir]
        assert main(base + ["--services", "6"]) == 0
        capsys.readouterr()
        assert main(base + ["--services", "4"]) == 2
        output = capsys.readouterr().out
        assert "error:" in output and "6 services" in output

    def test_serve_reuses_registry_model(self, capsys, tmp_path):
        registry_dir = str(tmp_path / "registry")
        base = ["serve", "--tenants", "1", "--samples", "48",
                "--window-size", "16", "--num-steps", "4", "--epochs", "1",
                "--hidden-dim", "8", "--history", "128",
                "--registry", registry_dir]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base) == 0
        output = capsys.readouterr().out
        assert "Loading warm model" in output
