"""Tests for the model registry: checkpoint round-trips and cataloguing."""

import os

import numpy as np
import pytest

from repro import ImDiffusionConfig, ImDiffusionDetector
from repro.serving import ModelRegistry


def make_series(length, channels=3, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    base = np.sin(2 * np.pi * t / 32)[:, None] * np.ones((1, channels))
    return base + 0.1 * rng.standard_normal((length, channels))


@pytest.fixture(scope="module")
def fitted_detector():
    config = ImDiffusionConfig(
        window_size=16, num_steps=4, epochs=1, hidden_dim=8, num_blocks=1,
        num_heads=2, max_train_windows=12, num_masked_windows=2,
        num_unmasked_windows=2, seed=0)
    return ImDiffusionDetector(config).fit(make_series(200, seed=1))


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(str(tmp_path / "models"))


class TestRoundTrip:
    def test_predictions_are_bit_identical(self, fitted_detector, registry):
        registry.save("monitor", fitted_detector)
        restored = registry.load("monitor")
        test = make_series(64, seed=2)
        # Stochastic inference: identity holds because the checkpoint captures
        # the exact generator state alongside the weights.
        original = fitted_detector.predict(test)
        loaded = restored.predict(test)
        assert np.array_equal(original.labels, loaded.labels)
        assert np.array_equal(original.scores, loaded.scores)
        for step in original.step_errors:
            assert np.array_equal(original.step_errors[step],
                                  loaded.step_errors[step])

    def test_scaler_and_config_survive(self, fitted_detector, registry):
        registry.save("monitor", fitted_detector)
        restored = registry.load("monitor")
        assert restored.config == fitted_detector.config
        assert restored.num_features == fitted_detector.num_features
        np.testing.assert_array_equal(restored._scaler.mean_,
                                      fitted_detector._scaler.mean_)
        np.testing.assert_array_equal(restored._scaler.std_,
                                      fitted_detector._scaler.std_)
        assert restored.train_losses == fitted_detector.train_losses

    def test_weights_survive(self, fitted_detector, registry):
        registry.save("monitor", fitted_detector)
        restored = registry.load("monitor")
        original_state = fitted_detector.model.state_dict()
        for name, value in restored.model.state_dict().items():
            np.testing.assert_array_equal(value, original_state[name])


class TestCatalogue:
    def test_list_contains_and_delete(self, fitted_detector, registry):
        assert registry.list_models() == []
        registry.save("a", fitted_detector)
        registry.save("b", fitted_detector)
        assert registry.list_models() == ["a", "b"]
        assert "a" in registry and "missing" not in registry
        registry.delete("a")
        assert registry.list_models() == ["b"]

    def test_record_metadata(self, fitted_detector, registry):
        path = registry.save("monitor", fitted_detector, metadata={"team": "sre"})
        record = registry.record("monitor")
        assert record.path == path
        assert os.path.exists(record.path)
        assert record.num_features == 3
        assert record.window_size == 16
        assert record.num_steps == 4
        assert record.size_bytes > 0
        assert record.created_at > 0
        assert "monitor" in record.describe()

    def test_save_overwrites_existing(self, fitted_detector, registry):
        registry.save("monitor", fitted_detector)
        first = registry.record("monitor").created_at
        registry.save("monitor", fitted_detector)
        assert registry.record("monitor").created_at >= first
        assert registry.list_models() == ["monitor"]


class TestErrors:
    def test_load_missing_raises(self, registry):
        with pytest.raises(KeyError):
            registry.load("nope")
        with pytest.raises(KeyError):
            registry.record("nope")
        with pytest.raises(KeyError):
            registry.delete("nope")

    def test_invalid_name_raises(self, fitted_detector, registry):
        with pytest.raises(ValueError):
            registry.save("../escape", fitted_detector)
        with pytest.raises(ValueError):
            registry.save("", fitted_detector)

    def test_unfitted_detector_cannot_be_saved(self, registry):
        with pytest.raises(RuntimeError):
            registry.save("fresh", ImDiffusionDetector())

    def test_unsupported_format_version(self, fitted_detector):
        arrays, meta = fitted_detector.to_checkpoint()
        meta["format_version"] = 99
        with pytest.raises(ValueError):
            ImDiffusionDetector.from_checkpoint(arrays, meta)
