"""Serving at scale: micro-batcher behaviour under 100+ tenants and the
sharded-inference wiring (scorer reducer, ``ServingConfig.score_workers``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ImDiffusionConfig, ImDiffusionDetector
from repro.core.detector import ImputationScoreSpec
from repro.inference import MultiprocessScoreReducer, SerialScoreReducer
from repro.serving import (
    DetectorService,
    IncrementalScorer,
    MicroBatcher,
    PendingWindow,
    ServingConfig,
)

WINDOW = 4
NUM_TENANTS = 120


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


class RecordingScorer:
    """Stub score_fn recording every batch it is asked to score."""

    def __init__(self, num_steps=3):
        self.num_steps = num_steps
        self.batches = []

    def __call__(self, windows):
        batch = windows.shape[0]
        self.batches.append(batch)
        return {k: np.full((batch, windows.shape[1]), float(k))
                for k in range(1, self.num_steps + 1)}


def request(tenant, start=0):
    return PendingWindow(tenant=tenant, start=start,
                         window=np.zeros((WINDOW, 2)))


class TestBatcherManyTenants:
    def test_backpressure_bounds_the_queue_across_120_tenants(self):
        scorer = RecordingScorer()
        merged = []
        batcher = MicroBatcher(scorer, flush_size=32, flush_age=60.0,
                               max_pending=32,
                               on_result=lambda req, errors:
                                   merged.append(req.tenant))
        # Every tenant submits one window without the driving loop ever
        # polling maybe_flush, so only the queue bound keeps the batcher in
        # check via synchronous backpressure flushes.
        for i in range(NUM_TENANTS):
            batcher.submit(request(f"tenant-{i:03d}"))
        assert batcher.queue_depth < 32
        assert batcher.stats.backpressure_events >= 3
        assert all(size <= 32 for size in scorer.batches)
        # No window is lost or duplicated on the way through.
        batcher.flush()
        assert sorted(merged) == sorted(f"tenant-{i:03d}"
                                        for i in range(NUM_TENANTS))

    def test_flush_by_age_scores_stragglers_from_every_tenant(self):
        clock = FakeClock()
        scorer = RecordingScorer()
        batcher = MicroBatcher(scorer, flush_size=500, flush_age=2.0,
                               max_pending=500, clock=clock)
        for i in range(NUM_TENANTS):
            batcher.submit(request(f"tenant-{i:03d}"))
        assert batcher.maybe_flush() is None  # young queue, below flush_size
        clock.advance(2.5)
        result = batcher.maybe_flush()
        assert result is not None and result.reason == "age"
        assert result.num_windows == NUM_TENANTS
        tenants = {req.tenant for req in result.requests}
        assert len(tenants) == NUM_TENANTS

    def test_result_rows_stay_aligned_with_their_tenants(self):
        # Tenants are interleaved and each window's merged errors must come
        # from its own row of the batched result.
        rows = {}

        def score_fn(windows):
            batch = windows.shape[0]
            return {1: windows[:, :, 0].copy(),
                    2: np.zeros((batch, windows.shape[1]))}

        def on_result(req, errors):
            rows[req.tenant] = float(errors[1][0])

        batcher = MicroBatcher(score_fn, flush_size=NUM_TENANTS,
                               flush_age=60.0, max_pending=NUM_TENANTS,
                               on_result=on_result)
        for i in range(NUM_TENANTS):
            window = np.full((WINDOW, 2), float(i))
            batcher.submit(PendingWindow(tenant=f"tenant-{i:03d}", start=0,
                                         window=window))
        batcher.maybe_flush()
        assert rows == {f"tenant-{i:03d}": float(i)
                        for i in range(NUM_TENANTS)}


def _fitted_detector(seed=0):
    config = ImDiffusionConfig(
        window_size=8, num_steps=2, epochs=1, hidden_dim=8, num_blocks=1,
        num_heads=2, batch_size=4, num_masked_windows=1,
        num_unmasked_windows=1, max_train_windows=8, train_stride=8,
        seed=seed)
    rng = np.random.default_rng(seed)
    return ImDiffusionDetector(config).fit(rng.standard_normal((40, 2)))


@pytest.fixture(scope="module")
def detector():
    return _fitted_detector()


class TestScorerReducerWiring:
    def test_default_reducer_is_serial(self, detector):
        scorer = IncrementalScorer(detector, history=64)
        assert isinstance(scorer._reducer, SerialScoreReducer)
        scorer.close()

    def test_multiprocess_reducer_scores_identically(self, detector):
        windows = np.random.default_rng(3).standard_normal((6, 8, 2))

        serial = IncrementalScorer(detector, history=64)
        expected = serial.score_window_batch(
            windows, rng=np.random.default_rng(5))
        serial.close()

        reducer = MultiprocessScoreReducer(ImputationScoreSpec(detector), 2)
        with IncrementalScorer(detector, history=64, reducer=reducer) as scorer:
            got = scorer.score_window_batch(windows,
                                            rng=np.random.default_rng(5))
        assert set(expected) == set(got)
        for progress in expected:
            assert np.array_equal(expected[progress], got[progress])

    def test_batches_larger_than_one_worker_shard_round_trip(self, detector):
        # 11 windows with batch_size=4 and 2 mask policies -> 6 tasks over
        # 2 workers: several tasks per worker, a ragged final chunk, and
        # results that must still come back in plan order.
        windows = np.random.default_rng(4).standard_normal((11, 8, 2))
        serial = SerialScoreReducer(ImputationScoreSpec(detector))
        expected = serial.window_errors(windows, np.random.default_rng(6))
        with MultiprocessScoreReducer(ImputationScoreSpec(detector), 2) as red:
            got = red.window_errors(windows, np.random.default_rng(6))
        for progress in expected:
            assert np.array_equal(expected[progress], got[progress])

    def test_empty_batch_keeps_the_progress_contract(self, detector):
        scorer = IncrementalScorer(detector, history=64)
        try:
            errors = scorer.score_window_batch(
                np.empty((0, 8, 2)), rng=np.random.default_rng(0))
            assert set(errors) == set(range(1, scorer.num_steps + 1))
            for values in errors.values():
                assert values.shape == (0, 8)
        finally:
            scorer.close()


class TestServiceScoreWorkers:
    def test_config_rejects_non_positive_workers(self, detector):
        with pytest.raises(ValueError, match="at least 1"):
            DetectorService(detector, ServingConfig(score_workers=0))

    def test_default_service_scores_in_process(self, detector):
        service = DetectorService(detector, ServingConfig())
        try:
            assert isinstance(service.scorer._reducer, SerialScoreReducer)
        finally:
            service.close()

    def test_sharded_service_matches_serial_service(self, detector):
        import copy

        def stream(config):
            # Each run gets its own detector copy so both start from the
            # same generator state (scoring consumes the detector's rng).
            service = DetectorService(copy.deepcopy(detector), config)
            rng = np.random.default_rng(8)
            alarms = []
            with service:
                for _ in range(3):
                    for tenant in ("a", "b", "c"):
                        alarms.extend(service.ingest(
                            tenant, rng.standard_normal((8, 2))))
                alarms.extend(service.drain())
                views = {tenant: service.tenant_view(tenant)
                         for tenant in ("a", "b", "c")}
            return alarms, views

        serial_alarms, serial_views = stream(ServingConfig(flush_size=4))
        shard_alarms, shard_views = stream(
            ServingConfig(flush_size=4, score_workers=2))
        assert [(a.tenant, a.index, a.score) for a in serial_alarms] == \
               [(a.tenant, a.index, a.score) for a in shard_alarms]
        for tenant in serial_views:
            assert np.array_equal(serial_views[tenant].labels,
                                  shard_views[tenant].labels)
            assert np.array_equal(serial_views[tenant].scores,
                                  shard_views[tenant].scores)

    def test_alarm_scan_latency_is_tracked(self, detector):
        service = DetectorService(detector, ServingConfig(flush_size=2))
        try:
            rng = np.random.default_rng(9)
            for _ in range(2):
                service.ingest("a", rng.standard_normal((8, 2)))
            service.drain()
            snap = service.metrics.snapshot()
            assert service.metrics.alarm_scan_latency.count > 0
            assert "alarm_scan_latency_p50" in snap
            assert "alarm_scan_latency_p99" in snap
            assert "alarm_scan_latency_p50 (ms)" in service.metrics.format_table()
        finally:
            service.close()
