"""Tests for incremental scoring: equivalence with offline scoring, caching."""

import numpy as np
import pytest

from repro import ImDiffusionConfig, ImDiffusionDetector
from repro.serving import IncrementalScorer


def make_series(length, channels=3, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    base = np.sin(2 * np.pi * t / 32)[:, None] * np.ones((1, channels))
    return base + 0.1 * rng.standard_normal((length, channels))


@pytest.fixture(scope="module")
def detector():
    config = ImDiffusionConfig(
        window_size=16, num_steps=4, epochs=1, hidden_dim=8, num_blocks=1,
        num_heads=2, max_train_windows=12, num_masked_windows=2,
        num_unmasked_windows=2, batch_size=8, seed=0)
    return ImDiffusionDetector(config).fit(make_series(200, seed=1))


class TestConstruction:
    def test_requires_fitted_detector(self):
        with pytest.raises(ValueError):
            IncrementalScorer(ImDiffusionDetector())

    def test_history_must_cover_a_window(self, detector):
        with pytest.raises(ValueError):
            IncrementalScorer(detector, history=8)

    def test_tenants_must_be_registered(self, detector):
        scorer = IncrementalScorer(detector, history=64)
        with pytest.raises(KeyError):
            scorer.ingest("ghost", np.zeros((1, 3)))
        scorer.register_tenant("a")
        with pytest.raises(ValueError):
            scorer.register_tenant("a")


class TestBatchEquivalence:
    def test_matches_offline_score_on_aligned_series(self, detector):
        """Batched window scoring reproduces ImDiffusionDetector.score exactly
        when fed the same windows with the same generator state."""
        test = make_series(64, seed=2)  # 4 non-overlapping windows of 16

        detector._rng = np.random.default_rng(1234)
        offline = detector.score(test)

        scorer = IncrementalScorer(detector, history=64)
        scaled = scorer.scale(test)
        windows = scaled.reshape(4, 16, 3)
        batched = scorer.score_window_batch(
            windows, rng=np.random.default_rng(1234))

        assert set(batched) == set(offline)
        for progress in offline:
            flattened = batched[progress].reshape(-1)
            np.testing.assert_allclose(flattened, offline[progress],
                                       rtol=1e-10, atol=1e-12)

    def test_rejects_wrong_window_shape(self, detector):
        scorer = IncrementalScorer(detector, history=64)
        with pytest.raises(ValueError):
            scorer.score_window_batch(np.zeros((2, 8, 3)))


class TestIncrementalFlow:
    def test_pending_windows_form_at_window_boundaries(self, detector):
        scorer = IncrementalScorer(detector, history=64)
        scorer.register_tenant("a")
        series = make_series(40, seed=3)
        scorer.ingest("a", series[:15])
        assert scorer.pending_windows("a") == []
        scorer.ingest("a", series[15:33])
        pending = scorer.pending_windows("a")
        assert [p.start for p in pending] == [0, 16]
        # Already-emitted windows are not emitted twice.
        assert scorer.pending_windows("a") == []

    def test_anchor_tail_covers_stream_end(self, detector):
        scorer = IncrementalScorer(detector, history=64)
        scorer.register_tenant("a")
        scorer.ingest("a", make_series(24, seed=3))
        pending = scorer.pending_windows("a", anchor_tail=True)
        assert [p.start for p in pending] == [0, 8]

    def test_score_pending_merges_and_decides(self, detector):
        scorer = IncrementalScorer(detector, history=64)
        scorer.register_tenant("a")
        scorer.ingest("a", make_series(48, seed=4))
        scored = scorer.score_pending("a")
        assert scored == 3
        assert scorer.scored_until("a") == 48
        view = scorer.decide("a")
        assert view.start == 0 and view.end == 48
        assert view.labels.shape == (48,)
        assert view.scores.shape == (48,)
        assert set(np.unique(view.labels)).issubset({0, 1})
        assert np.all(view.scores >= 0)

    def test_decide_before_any_scores_is_empty(self, detector):
        scorer = IncrementalScorer(detector, history=64)
        scorer.register_tenant("a")
        view = scorer.decide("a")
        assert view.labels.shape == (0,)

    def test_score_cache_is_bounded(self, detector):
        scorer = IncrementalScorer(detector, history=32, raw_capacity=64)
        scorer.register_tenant("a")
        scorer.ingest("a", make_series(96, seed=5))
        scorer.score_pending("a")
        view = scorer.decide("a")
        assert view.end == 96
        assert view.end - view.start == 32  # only the evaluation buffer is kept

    def test_raw_buffer_eviction_drops_unscored_points(self, detector):
        scorer = IncrementalScorer(detector, history=32, raw_capacity=32)
        scorer.register_tenant("a")
        scorer.ingest("a", make_series(80, seed=6))  # 48 points evicted unscored
        pending = scorer.pending_windows("a")
        assert [p.start for p in pending] == [48, 64]
        assert scorer.dropped_points("a") == 48

    def test_decide_excludes_gap_filled_rows(self, detector):
        """Points evicted before scoring must not enter the vote as fake
        zero-error evidence (regression test)."""
        scorer = IncrementalScorer(detector, history=64, raw_capacity=32)
        scorer.register_tenant("a")
        scorer.ingest("a", make_series(80, seed=9))
        scorer.score_pending("a")
        view = scorer.decide("a")
        assert view.start == 48  # the unscored [0, 48) span is excluded
        assert view.end == 80
        assert view.labels.shape == (32,)

    def test_tenant_streams_are_independent(self, detector):
        scorer = IncrementalScorer(detector, history=64)
        scorer.register_tenant("a")
        scorer.register_tenant("b")
        scorer.ingest("a", make_series(32, seed=7))
        scorer.ingest("b", make_series(16, seed=8))
        assert scorer.total("a") == 32
        assert scorer.total("b") == 16
        scorer.score_pending("a")
        assert scorer.scored_until("a") == 32
        assert scorer.scored_until("b") == 0
