"""Tests for the stream router, detector service and service metrics."""

import numpy as np
import pytest

from repro import ImDiffusionConfig, ImDiffusionDetector
from repro.serving import (
    DetectorService,
    LatencyTracker,
    ServiceMetrics,
    ServingConfig,
    StreamRouter,
    IncrementalScorer,
    TelemetryEvent,
)

WINDOW = 16


def make_series(length, channels=3, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    base = np.sin(2 * np.pi * t / 32)[:, None] * np.ones((1, channels))
    return base + 0.1 * rng.standard_normal((length, channels))


@pytest.fixture(scope="module")
def detector():
    config = ImDiffusionConfig(
        window_size=WINDOW, num_steps=4, epochs=1, hidden_dim=8, num_blocks=1,
        num_heads=2, max_train_windows=12, num_masked_windows=2,
        num_unmasked_windows=2, deterministic_inference=True, collect="x0",
        seed=0)
    return ImDiffusionDetector(config).fit(make_series(200, seed=1))


class TestStreamRouter:
    def test_ingest_emits_windows_downstream(self, detector):
        received = []
        scorer = IncrementalScorer(detector, history=64)
        router = StreamRouter(scorer, on_window=received.append)
        router.register_tenant("a")
        series = make_series(WINDOW * 2 + 3, seed=2)
        for row in series:
            router.ingest(TelemetryEvent(tenant="a", values=row))
        assert [w.start for w in received] == [0, WINDOW]
        assert router.events_ingested == series.shape[0]

    def test_auto_registration(self, detector):
        router = StreamRouter(IncrementalScorer(detector, history=64))
        router.ingest_points("new-tenant", make_series(4, seed=3))
        assert router.tenants() == ["new-tenant"]

    def test_strict_mode_rejects_unknown_tenants(self, detector):
        router = StreamRouter(IncrementalScorer(detector, history=64),
                              auto_register=False)
        with pytest.raises(KeyError):
            router.ingest_points("ghost", make_series(4, seed=3))


class TestDetectorService:
    def test_four_tenants_share_one_model(self, detector):
        service = DetectorService(detector, ServingConfig(flush_size=4,
                                                          history=128))
        tenants = [f"t{i}" for i in range(4)]
        streams = {t: make_series(3 * WINDOW, seed=10 + i)
                   for i, t in enumerate(tenants)}
        for step in range(3 * WINDOW):
            for tenant in tenants:
                service.ingest(tenant, streams[tenant][step])
        service.drain()
        for tenant in tenants:
            view = service.tenant_view(tenant)
            assert view.end == 3 * WINDOW
            assert view.labels.shape[0] == 3 * WINDOW
        snap = service.metrics.snapshot()
        assert snap["active_tenants"] == 4
        assert snap["points_scored"] >= 4 * 3 * WINDOW
        assert snap["batches_flushed"] >= 1
        assert snap["queue_depth"] == 0

    def test_alarms_are_monotone_and_deduplicated(self, detector):
        service = DetectorService(detector, ServingConfig(flush_size=2,
                                                          history=128))
        series = make_series(4 * WINDOW, seed=4)
        series[40:44] += 4.0  # strong injected anomaly
        alarms = []
        for row in series:
            alarms.extend(service.ingest("a", row))
        alarms.extend(service.drain())
        indices = [a.index for a in alarms if a.tenant == "a"]
        assert len(indices) == len(set(indices)), "duplicate alarms"
        assert any(40 <= i < 44 for i in indices), "injected anomaly missed"

    def test_drain_scores_partial_tails(self, detector):
        service = DetectorService(detector, ServingConfig(flush_size=4,
                                                          history=128))
        service.ingest("a", make_series(WINDOW + 5, seed=5))
        assert service.scorer.scored_until("a") < WINDOW + 5
        service.drain()
        assert service.scorer.scored_until("a") == WINDOW + 5
        assert service.tenant_view("a").labels.shape[0] == WINDOW + 5

    def test_router_auto_registered_tenants_are_served(self, detector):
        """Tenants entering through the router front door must not crash the
        service-side alarm bookkeeping (regression test)."""
        service = DetectorService(detector, ServingConfig(flush_size=1,
                                                          history=128))
        series = make_series(2 * WINDOW, seed=7)
        for row in series:
            service.ingest_event(TelemetryEvent(tenant="side-door", values=row))
        service.pump()
        service.drain()
        view = service.tenant_view("side-door")
        assert view.end == 2 * WINDOW
        # register_tenant afterwards is idempotent, not an error.
        service.register_tenant("side-door")

    def test_backpressure_engages_on_burst_ingest(self, detector):
        """A single huge block emits more windows than max_pending allows."""
        service = DetectorService(detector, ServingConfig(
            flush_size=2, max_pending=3, history=512))
        service.ingest("a", make_series(10 * WINDOW, seed=8))
        assert service.metrics.backpressure_events >= 1
        service.drain()
        assert service.tenant_view("a").end == 10 * WINDOW

    def test_pump_flushes_by_age(self, detector):
        clock = [0.0]
        service = DetectorService(
            detector,
            ServingConfig(flush_size=100, flush_age=5.0, max_pending=100,
                          history=128),
            clock=lambda: clock[0])
        service.ingest("a", make_series(WINDOW, seed=6))
        assert service.batcher.queue_depth == 1
        service.pump()
        assert service.batcher.queue_depth == 1  # not old enough yet
        clock[0] += 6.0
        service.pump()
        assert service.batcher.queue_depth == 0
        assert service.metrics.flush_reasons.get("age") == 1


class TestServiceMetrics:
    def test_latency_percentiles(self):
        tracker = LatencyTracker()
        assert tracker.percentile(50) == 0.0
        for value in [0.01, 0.02, 0.03, 0.04, 0.10]:
            tracker.record(value)
        assert tracker.percentile(50) == pytest.approx(0.03)
        assert tracker.percentile(99) <= 0.10
        assert tracker.mean == pytest.approx(0.04)

    def test_latency_reservoir_is_bounded(self):
        tracker = LatencyTracker(capacity=10)
        for i in range(100):
            tracker.record(float(i))
        assert tracker.count == 100
        assert tracker.percentile(0) == 90.0  # only the newest 10 retained

    def test_snapshot_and_table(self):
        metrics = ServiceMetrics(clock=lambda: 1.0)
        metrics.record_batch(num_windows=4, points=64, seconds=0.05,
                             reason="size")
        snap = metrics.snapshot()
        assert snap["windows_scored"] == 4
        assert snap["points_scored"] == 64
        assert snap["scoring_latency_p50"] == pytest.approx(0.05)
        table = metrics.format_table()
        assert "points_per_second" in table
        assert "flushes_by_reason" in table
