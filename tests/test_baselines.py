"""Tests for the ten baseline detectors.

Every baseline is checked for the shared detector contract (fit/score/predict
shapes, input validation, reproducibility) plus a light sanity check that the
scores separate an obvious injected anomaly from normal data.
"""

import numpy as np
import pytest

from repro.baselines import (
    BASELINE_REGISTRY,
    BaselineResult,
    BeatGANDetector,
    GDNDetector,
    IsolationForestDetector,
    LSTMADDetector,
    MSCREDDetector,
    OmniAnomalyDetector,
    TranADDetector,
)
from repro.data import MTSConfig, generate_mts

ALL_BASELINES = sorted(BASELINE_REGISTRY.items())

# Small hyper-parameters so the whole matrix stays fast.
FAST_OVERRIDES = {
    "IForest": dict(num_trees=20, subsample_size=64),
    "BeatGAN": dict(window_size=16, epochs=2, hidden_dim=16, max_train_windows=32),
    "LSTM-AD": dict(history=8, hidden_size=16, epochs=2, max_train_samples=128),
    "InterFusion": dict(window_size=16, epochs=2, hidden_dim=16, max_train_windows=32),
    "OmniAnomaly": dict(window_size=16, epochs=2, hidden_size=16, max_train_windows=32),
    "GDN": dict(history=8, epochs=2, hidden_dim=16, max_train_samples=128),
    "MAD-GAN": dict(window_size=16, epochs=2, hidden_size=16, max_train_windows=32,
                    num_latent_candidates=4),
    "MTAD-GAT": dict(window_size=16, epochs=2, hidden_size=16, max_train_windows=32),
    "MSCRED": dict(window_size=16, scales=(4, 8, 16), epochs=2, max_train_windows=32),
    "TranAD": dict(window_size=16, epochs=2, hidden_size=16, max_train_windows=32),
}


def make_detector(name, seed=0):
    return BASELINE_REGISTRY[name](seed=seed, **FAST_OVERRIDES[name])


@pytest.fixture(scope="module")
def toy_data():
    """A small series with a large, unmistakable anomaly in the test split."""
    rng = np.random.default_rng(0)
    config = MTSConfig(length=700, num_features=5, noise_scale=0.05)
    series = generate_mts(config, rng)
    train, test = series[:400], series[400:].copy()
    labels = np.zeros(test.shape[0], dtype=int)
    test[150:170] += 8.0 * test.std(axis=0)
    labels[150:170] = 1
    return train, test, labels


class TestDetectorContract:
    @pytest.mark.parametrize("name,cls", ALL_BASELINES)
    def test_registry_names_match(self, name, cls):
        assert cls.name == name

    @pytest.mark.parametrize("name,cls", ALL_BASELINES)
    def test_fit_predict_shapes(self, name, cls, toy_data):
        train, test, labels = toy_data
        result = make_detector(name).fit_predict(train, test)
        assert isinstance(result, BaselineResult)
        assert result.labels.shape == labels.shape
        assert result.scores.shape == labels.shape
        assert set(np.unique(result.labels)).issubset({0, 1})
        assert np.isfinite(result.scores).all()

    @pytest.mark.parametrize("name,cls", ALL_BASELINES)
    def test_score_before_fit_raises(self, name, cls, toy_data):
        _, test, _ = toy_data
        with pytest.raises(RuntimeError):
            make_detector(name).score(test)

    @pytest.mark.parametrize("name,cls", ALL_BASELINES)
    def test_feature_mismatch_raises(self, name, cls, toy_data):
        train, test, _ = toy_data
        detector = make_detector(name).fit(train)
        with pytest.raises(ValueError):
            detector.score(test[:, :3])

    @pytest.mark.parametrize("name,cls", ALL_BASELINES)
    def test_rejects_1d_input(self, name, cls):
        with pytest.raises(ValueError):
            make_detector(name).fit(np.zeros(50))

    @pytest.mark.parametrize("name,cls", ALL_BASELINES)
    def test_anomaly_scored_above_normal(self, name, cls, toy_data):
        """The mean score inside the obvious anomaly must exceed the normal mean."""
        train, test, labels = toy_data
        scores = make_detector(name).fit(train).score(test)
        anomalous = scores[labels == 1].mean()
        normal = scores[labels == 0].mean()
        assert anomalous > normal, f"{name} does not separate an obvious anomaly"

    @pytest.mark.parametrize("name,cls", ALL_BASELINES)
    def test_trainable_baselines_record_loss_curve(self, name, cls, toy_data):
        """Every gradient-trained baseline runs through the shared Trainer."""
        train, _, _ = toy_data
        detector = make_detector(name).fit(train)
        if name == "IForest":  # no gradient loop, no loss curve
            assert detector.last_train_result is None
            return
        assert detector.last_train_result is not None
        assert len(detector.train_losses) == detector.last_train_result.epochs_run
        assert detector.last_train_result.epochs_run == FAST_OVERRIDES[name]["epochs"]
        assert all(np.isfinite(loss) for loss in detector.train_losses)


class TestBaselineEarlyStopping:
    def test_early_stopping_shortens_training(self, toy_data):
        train, test, _ = toy_data
        detector = make_detector("LSTM-AD")
        detector.epochs = 10
        detector.early_stopping_patience = 1
        detector.early_stopping_min_delta = 1e9  # every epoch counts as a miss
        detector.fit(train)
        assert detector.last_train_result.stopped_early
        assert detector.last_train_result.epochs_run == 2
        assert np.isfinite(detector.score(test)).all()

    def test_gan_early_stopping_keeps_pair_in_sync(self, toy_data):
        # Adversarial baselines stop early but never roll back the generator
        # (the discriminator lives outside the Trainer), so scoring still
        # uses a generator/discriminator pair from the same epoch.
        train, test, _ = toy_data
        detector = make_detector("MAD-GAN")
        detector.epochs = 6
        detector.early_stopping_patience = 1
        detector.early_stopping_min_delta = 1e9
        detector.fit(train)
        assert detector.last_train_result.stopped_early
        assert detector.last_train_result.epochs_run == 2
        assert not detector._restore_best_weights
        assert np.isfinite(detector.score(test)).all()


class TestIsolationForest:
    def test_deterministic_given_seed(self, toy_data):
        train, test, _ = toy_data
        a = IsolationForestDetector(num_trees=10, seed=1).fit(train).score(test)
        b = IsolationForestDetector(num_trees=10, seed=1).fit(train).score(test)
        np.testing.assert_allclose(a, b)

    def test_scores_in_unit_interval(self, toy_data):
        train, test, _ = toy_data
        scores = IsolationForestDetector(num_trees=10, seed=0).fit(train).score(test)
        assert scores.min() >= 0.0 and scores.max() <= 1.0


class TestLSTMAD:
    def test_training_reduces_forecast_error(self, toy_data):
        train, _, _ = toy_data
        untrained = LSTMADDetector(history=8, epochs=0, seed=0, hidden_size=16)
        trained = LSTMADDetector(history=8, epochs=3, seed=0, hidden_size=16,
                                 max_train_samples=128)
        untrained.fit(train)
        trained.fit(train)
        # Evaluate forecast error on the training series itself.
        untrained_error = untrained.score(train).mean()
        trained_error = trained.score(train).mean()
        assert trained_error < untrained_error


class TestOmniAnomaly:
    def test_uses_pot_threshold(self):
        assert OmniAnomalyDetector().use_pot is True


class TestGDN:
    def test_score_is_max_over_sensors(self, toy_data):
        train, test, _ = toy_data
        detector = GDNDetector(history=8, epochs=1, seed=0, max_train_samples=64)
        detector.fit(train)
        scores = detector.score(test)
        per_sensor = detector._per_sensor_errors(detector.scaler.transform(test))
        normalised = (per_sensor - detector._error_median) / detector._error_iqr
        np.testing.assert_allclose(scores, normalised.max(axis=1))

    def test_graph_is_sparse_topk(self, toy_data):
        train, _, _ = toy_data
        detector = GDNDetector(history=8, epochs=1, top_k=2, seed=0, max_train_samples=64)
        detector.fit(train)
        adjacency = detector._adjacency
        assert adjacency.shape == (5, 5)
        assert np.all(adjacency.sum(axis=1) <= 2)
        assert np.all(np.diag(adjacency) == 0)


class TestMSCRED:
    def test_signature_matrix_dimension(self, toy_data):
        train, _, _ = toy_data
        detector = MSCREDDetector(window_size=16, scales=(4, 8), seed=0, epochs=1,
                                  max_train_windows=16)
        detector.fit(train)
        window = detector.scaler.transform(train[:16])
        features = detector._signature_matrices(window)
        assert features.shape == (2 * 5 * 5,)


class TestTranAD:
    def test_two_phase_outputs_differ(self, toy_data):
        train, test, _ = toy_data
        detector = TranADDetector(window_size=16, epochs=1, seed=0, max_train_windows=16)
        detector.fit(train)
        windows, _ = detector._windows(detector.scaler.transform(test), 16, 8)
        phase1, phase2 = detector._two_phase(windows[:2])
        assert not np.allclose(phase1.data, phase2.data)


class TestBeatGAN:
    def test_discriminator_outputs_probabilities(self, toy_data):
        train, _, _ = toy_data
        detector = BeatGANDetector(window_size=16, epochs=1, seed=0, max_train_windows=16)
        detector.fit(train)
        windows, _ = detector._windows(detector.scaler.transform(train), 16, 8)
        from repro.nn import Tensor

        probs = detector._discriminator(Tensor(windows[:4].reshape(4, -1))).data
        assert np.all((probs >= 0) & (probs <= 1))
