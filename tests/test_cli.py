"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_detect_defaults(self):
        args = build_parser().parse_args(["detect"])
        assert args.dataset == "SMD"
        assert args.epochs == 3
        assert args.no_ensemble is False

    def test_compare_detector_list(self):
        args = build_parser().parse_args(["compare", "--detectors", "IForest, TranAD"])
        assert args.detectors == "IForest, TranAD"


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        for name in ("SMD", "PSM", "SWaT", "SMAP", "MSL", "GCP"):
            assert name in output

    def test_detect_command_runs_small(self, capsys):
        exit_code = main([
            "detect", "--dataset", "GCP", "--scale", "0.07", "--epochs", "1",
            "--window-size", "24", "--num-steps", "6", "--hidden-dim", "8",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "f1=" in output
        assert "throughput=" in output

    def test_compare_command_runs_small(self, capsys):
        exit_code = main([
            "compare", "--dataset", "GCP", "--scale", "0.07",
            "--detectors", "IForest",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "IForest" in output and "GCP" in output

    def test_compare_unknown_detector_raises(self):
        with pytest.raises(KeyError):
            main(["compare", "--dataset", "GCP", "--scale", "0.07",
                  "--detectors", "NotADetector"])


class TestTrainCommand:
    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.epochs == 5
        assert args.early_stop_patience is None
        assert args.lr_schedule is None
        assert args.registry is None

    def test_train_publishes_registry_model(self, tmp_path, capsys):
        registry_dir = str(tmp_path / "registry")
        checkpoint = str(tmp_path / "trainer.npz")
        exit_code = main([
            "train", "--dataset", "GCP", "--scale", "0.07", "--epochs", "2",
            "--window-size", "24", "--num-steps", "6", "--hidden-dim", "8",
            "--registry", registry_dir, "--model-name", "gcp-cli",
            "--checkpoint", checkpoint,
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "epoch   1" in output and "epoch   2" in output
        assert "Published gcp-cli" in output

        from repro.nn.serialization import load_checkpoint
        from repro.serving import ModelRegistry

        registry = ModelRegistry(registry_dir)
        assert "gcp-cli" in registry
        detector = registry.load("gcp-cli")
        assert detector.is_fitted
        assert len(detector.train_losses) == 2
        _, metadata = load_checkpoint(checkpoint)
        assert metadata["epoch"] == 2

    def test_train_early_stopping_and_schedule_flags(self, tmp_path, capsys):
        exit_code = main([
            "train", "--dataset", "GCP", "--scale", "0.07", "--epochs", "4",
            "--window-size", "24", "--num-steps", "6", "--hidden-dim", "8",
            "--early-stop-patience", "1", "--early-stop-min-delta", "1e9",
            "--lr-schedule", "cosine", "--lr-warmup-epochs", "1",
            "--registry", str(tmp_path / "registry"),
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Converged after 2/4 epochs" in output

    def test_train_serve_round_trip(self, tmp_path, capsys):
        # The acceptance path: `repro train` publishes a checkpoint that
        # `repro serve` warm-loads instead of retraining.
        registry_dir = str(tmp_path / "registry")
        assert main([
            "train", "--dataset", "GCP", "--scale", "0.07", "--epochs", "1",
            "--window-size", "24", "--num-steps", "6", "--hidden-dim", "8",
            "--registry", registry_dir, "--model-name", "shared",
        ]) == 0
        capsys.readouterr()
        assert main([
            "serve", "--registry", registry_dir, "--model-name", "shared",
            "--services", "19", "--tenants", "1", "--samples", "40",
        ]) == 0
        output = capsys.readouterr().out
        assert "Loading warm model 'shared'" in output
        assert "Training shared model" not in output
