"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_detect_defaults(self):
        args = build_parser().parse_args(["detect"])
        assert args.dataset == "SMD"
        assert args.epochs == 3
        assert args.no_ensemble is False
        assert args.validation_fraction == 0.0
        assert args.validation_split == "random"
        assert args.num_workers == 1

    def test_compare_takes_validation_flags(self):
        args = build_parser().parse_args(
            ["compare", "--validation-fraction", "0.2",
             "--validation-split", "tail"])
        assert args.validation_fraction == 0.2
        assert args.validation_split == "tail"

    def test_compare_detector_list(self):
        args = build_parser().parse_args(["compare", "--detectors", "IForest, TranAD"])
        assert args.detectors == "IForest, TranAD"

    def test_serve_takes_analytics_flags(self):
        args = build_parser().parse_args(
            ["serve", "--policy", "score > 0.5", "--policy",
             "hysteresis(up=1, down=0.2)", "--export-scores", "out.jsonl"])
        assert args.policies == ["score > 0.5", "hysteresis(up=1, down=0.2)"]
        assert args.export_scores == "out.jsonl"

    def test_query_defaults(self):
        args = build_parser().parse_args(["query", "--from", "scores.jsonl"])
        assert args.from_path == "scores.jsonl"
        assert args.tenant is None and args.ops is None
        assert args.policies is None and args.check is False
        assert args.episode_gap == 2 and args.episode_min_length == 1

    def test_query_requires_from(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query"])


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        for name in ("SMD", "PSM", "SWaT", "SMAP", "MSL", "GCP"):
            assert name in output

    def test_detect_command_runs_small(self, capsys):
        exit_code = main([
            "detect", "--dataset", "GCP", "--scale", "0.07", "--epochs", "1",
            "--window-size", "24", "--num-steps", "6", "--hidden-dim", "8",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "f1=" in output
        assert "throughput=" in output

    def test_compare_command_runs_small(self, capsys):
        exit_code = main([
            "compare", "--dataset", "GCP", "--scale", "0.07",
            "--detectors", "IForest",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "IForest" in output and "GCP" in output

    def test_compare_unknown_detector_raises(self):
        with pytest.raises(KeyError):
            main(["compare", "--dataset", "GCP", "--scale", "0.07",
                  "--detectors", "NotADetector"])


class TestTrainCommand:
    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.epochs is None  # 5 unless --resume supplies a budget
        assert args.early_stop_patience is None
        assert args.lr_schedule is None
        assert args.registry is None
        assert args.validation_fraction == 0.0
        assert args.validation_split == "random"
        assert args.num_workers is None  # 1 unless --resume keeps the snapshot's
        assert args.resume is None

    def test_train_publishes_registry_model(self, tmp_path, capsys):
        registry_dir = str(tmp_path / "registry")
        checkpoint = str(tmp_path / "trainer.npz")
        exit_code = main([
            "train", "--dataset", "GCP", "--scale", "0.07", "--epochs", "2",
            "--window-size", "24", "--num-steps", "6", "--hidden-dim", "8",
            "--registry", registry_dir, "--model-name", "gcp-cli",
            "--checkpoint", checkpoint,
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "epoch   1" in output and "epoch   2" in output
        assert "Published gcp-cli" in output

        from repro.nn.serialization import load_checkpoint
        from repro.serving import ModelRegistry

        registry = ModelRegistry(registry_dir)
        assert "gcp-cli" in registry
        detector = registry.load("gcp-cli")
        assert detector.is_fitted
        assert len(detector.train_losses) == 2
        _, metadata = load_checkpoint(checkpoint)
        assert metadata["epoch"] == 2

    def test_train_early_stopping_and_schedule_flags(self, tmp_path, capsys):
        exit_code = main([
            "train", "--dataset", "GCP", "--scale", "0.07", "--epochs", "4",
            "--window-size", "24", "--num-steps", "6", "--hidden-dim", "8",
            "--early-stop-patience", "1", "--early-stop-min-delta", "1e9",
            "--lr-schedule", "cosine", "--lr-warmup-epochs", "1",
            "--registry", str(tmp_path / "registry"),
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Converged after 2/4 epochs" in output

    def test_train_validation_fraction_flag(self, tmp_path, capsys):
        exit_code = main([
            "train", "--dataset", "GCP", "--scale", "0.07", "--epochs", "2",
            "--window-size", "24", "--num-steps", "6", "--hidden-dim", "8",
            "--validation-fraction", "0.25",
            "--registry", str(tmp_path / "registry"), "--model-name", "val-run",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Held-out validation loss (fraction 0.25):" in output

        from repro.serving import ModelRegistry

        detector = ModelRegistry(str(tmp_path / "registry")).load("val-run")
        assert len(detector.val_losses) == 2

    def test_train_num_workers_flag(self, tmp_path, capsys):
        exit_code = main([
            "train", "--dataset", "GCP", "--scale", "0.07", "--epochs", "1",
            "--window-size", "24", "--num-steps", "6", "--hidden-dim", "8",
            "--num-workers", "2",
            "--registry", str(tmp_path / "registry"), "--model-name", "par-run",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Data-parallel: 2 spawned gradient workers per batch" in output

        from repro.serving import ModelRegistry

        # The published checkpoint carries the knob; a serial retrain of the
        # same config stays on the same random stream.
        detector = ModelRegistry(str(tmp_path / "registry")).load("par-run")
        assert detector.config.num_workers == 2

    def test_detect_validation_fraction_runs(self, capsys):
        exit_code = main([
            "detect", "--dataset", "GCP", "--scale", "0.07", "--epochs", "1",
            "--window-size", "24", "--num-steps", "6", "--hidden-dim", "8",
            "--validation-fraction", "0.25", "--validation-split", "tail",
        ])
        assert exit_code == 0
        assert "f1=" in capsys.readouterr().out

    def test_compare_validation_fraction_covers_baselines_and_iforest(self, capsys):
        # IForest takes no validation knobs and must still run unaffected.
        exit_code = main([
            "compare", "--dataset", "GCP", "--scale", "0.07",
            "--detectors", "IForest,LSTM-AD",
            "--validation-fraction", "0.25",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "IForest" in output and "LSTM-AD" in output

    def test_train_serve_round_trip(self, tmp_path, capsys):
        # The acceptance path: `repro train` publishes a checkpoint that
        # `repro serve` warm-loads instead of retraining.
        registry_dir = str(tmp_path / "registry")
        assert main([
            "train", "--dataset", "GCP", "--scale", "0.07", "--epochs", "1",
            "--window-size", "24", "--num-steps", "6", "--hidden-dim", "8",
            "--registry", registry_dir, "--model-name", "shared",
        ]) == 0
        capsys.readouterr()
        assert main([
            "serve", "--registry", registry_dir, "--model-name", "shared",
            "--services", "19", "--tenants", "1", "--samples", "40",
        ]) == 0
        output = capsys.readouterr().out
        assert "Loading warm model 'shared'" in output
        assert "Training shared model" not in output


class TestTrainResume:
    """`repro train --resume` continues an interrupted run bit-identically."""

    _FLAGS = ["--dataset", "GCP", "--scale", "0.07", "--window-size", "24",
              "--num-steps", "6", "--hidden-dim", "8",
              "--validation-fraction", "0.25", "--early-stop-patience", "3"]

    def test_resume_round_trip_is_bit_identical(self, tmp_path, capsys):
        import numpy as np

        from repro.serving import ModelRegistry

        # Uninterrupted reference: 3 epochs in one run.
        assert main(["train", *self._FLAGS, "--epochs", "3",
                     "--registry", str(tmp_path / "full"),
                     "--model-name", "full"]) == 0

        # Interrupted run: 2 epochs + snapshot, then resume to the 3-epoch
        # budget in a second process-equivalent invocation.
        snapshot = str(tmp_path / "trainer.npz")
        assert main(["train", *self._FLAGS, "--epochs", "2",
                     "--checkpoint", snapshot,
                     "--registry", str(tmp_path / "part"),
                     "--model-name", "part"]) == 0
        capsys.readouterr()
        assert main(["train", "--resume", snapshot, "--epochs", "3",
                     "--registry", str(tmp_path / "resumed"),
                     "--model-name", "resumed"]) == 0
        output = capsys.readouterr().out
        assert f"Resuming from {snapshot}" in output

        full = ModelRegistry(str(tmp_path / "full")).load("full")
        resumed = ModelRegistry(str(tmp_path / "resumed")).load("resumed")

        # Bit-identical continuation: parameters, loss curves and the
        # held-out validation curve all match the uninterrupted run.
        full_state = full.model.state_dict()
        resumed_state = resumed.model.state_dict()
        assert set(full_state) == set(resumed_state)
        for name in full_state:
            np.testing.assert_array_equal(full_state[name], resumed_state[name])
        assert resumed.train_losses == full.train_losses
        assert resumed.val_losses == full.val_losses

        # And so do the scores the published models produce.
        from repro.data import load_dataset

        test = load_dataset("GCP", seed=0, scale=0.07).test
        full_scores = full.score(test)
        resumed_scores = resumed.score(test)
        for step in full_scores:
            np.testing.assert_array_equal(full_scores[step], resumed_scores[step])

    def test_resume_rejects_conflicting_flags(self, tmp_path, capsys):
        snapshot = str(tmp_path / "trainer.npz")
        assert main(["train", *self._FLAGS, "--epochs", "1",
                     "--checkpoint", snapshot,
                     "--registry", str(tmp_path / "reg")]) == 0
        capsys.readouterr()
        # Training flags other than --epochs are restored from the snapshot;
        # passing them alongside --resume is an error, never a silent no-op.
        assert main(["train", "--resume", snapshot, "--lr-schedule", "cosine",
                     "--registry", str(tmp_path / "reg2")]) == 2
        output = capsys.readouterr().out
        assert "--lr-schedule" in output and "cannot be combined with --resume" in output
        # The validation split shapes the trajectory, so it conflicts too.
        assert main(["train", "--resume", snapshot, "--validation-split", "tail",
                     "--registry", str(tmp_path / "reg3")]) == 2
        output = capsys.readouterr().out
        assert "--validation-split" in output

    def test_resume_may_change_the_worker_count(self, tmp_path, capsys):
        # Parallelism is an execution detail: a serial snapshot may continue
        # under spawned gradient workers (and vice versa) on the same stream.
        snapshot = str(tmp_path / "trainer.npz")
        assert main(["train", *self._FLAGS, "--epochs", "2",
                     "--checkpoint", snapshot,
                     "--registry", str(tmp_path / "reg")]) == 0
        capsys.readouterr()
        assert main(["train", "--resume", snapshot, "--epochs", "3",
                     "--num-workers", "2",
                     "--registry", str(tmp_path / "reg2"),
                     "--model-name", "resumed-parallel"]) == 0
        output = capsys.readouterr().out
        assert "Data-parallel: 2 spawned gradient workers per batch" in output
        assert "Resuming from" in output

    def test_resume_never_inherits_the_snapshot_worker_count(self, tmp_path,
                                                             capsys):
        # A snapshot written under --num-workers 2 resumes in-process unless
        # the flag is passed again: the count is per-machine, not per-run.
        snapshot = str(tmp_path / "trainer.npz")
        assert main(["train", *self._FLAGS, "--epochs", "2",
                     "--num-workers", "2", "--checkpoint", snapshot,
                     "--registry", str(tmp_path / "reg")]) == 0
        capsys.readouterr()
        assert main(["train", "--resume", snapshot, "--epochs", "3",
                     "--registry", str(tmp_path / "reg2"),
                     "--model-name", "resumed-serial"]) == 0
        output = capsys.readouterr().out
        assert "Resuming from" in output
        assert "Data-parallel" not in output

    def test_resume_rejects_snapshot_without_cli_metadata(self, tmp_path, capsys):
        import numpy as np

        from repro import ImDiffusionConfig, ImDiffusionDetector
        from repro.training import Checkpoint

        # A raw trainer snapshot (written outside `repro train`) has no
        # cli_run metadata, so the CLI cannot rebuild the run from it.
        rng = np.random.default_rng(0)
        series = rng.standard_normal((80, 3))
        snapshot = str(tmp_path / "raw.npz")
        config = ImDiffusionConfig(window_size=16, num_steps=6, epochs=1,
                                   hidden_dim=8, num_blocks=1,
                                   max_train_windows=8, train_stride=8)
        ImDiffusionDetector(config).fit(series, callbacks=[Checkpoint(snapshot)])

        assert main(["train", "--resume", snapshot]) == 2
        assert "missing cli_run metadata" in capsys.readouterr().out
