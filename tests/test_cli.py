"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_detect_defaults(self):
        args = build_parser().parse_args(["detect"])
        assert args.dataset == "SMD"
        assert args.epochs == 3
        assert args.no_ensemble is False

    def test_compare_detector_list(self):
        args = build_parser().parse_args(["compare", "--detectors", "IForest, TranAD"])
        assert args.detectors == "IForest, TranAD"


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        for name in ("SMD", "PSM", "SWaT", "SMAP", "MSL", "GCP"):
            assert name in output

    def test_detect_command_runs_small(self, capsys):
        exit_code = main([
            "detect", "--dataset", "GCP", "--scale", "0.07", "--epochs", "1",
            "--window-size", "24", "--num-steps", "6", "--hidden-dim", "8",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "f1=" in output
        assert "throughput=" in output

    def test_compare_command_runs_small(self, capsys):
        exit_code = main([
            "compare", "--dataset", "GCP", "--scale", "0.07",
            "--detectors", "IForest",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "IForest" in output and "GCP" in output

    def test_compare_unknown_detector_raises(self):
        with pytest.raises(KeyError):
            main(["compare", "--dataset", "GCP", "--scale", "0.07",
                  "--detectors", "NotADetector"])
