"""docs/cli.md is generated — this test keeps it in sync with the parser."""

from pathlib import Path

from repro.cli_reference import render_cli_reference

DOCS = Path(__file__).resolve().parent.parent / "docs" / "cli.md"


def test_cli_reference_covers_every_subcommand():
    text = render_cli_reference()
    from repro.cli import build_parser
    import argparse

    parser = build_parser()
    subactions = [a for a in parser._actions
                  if isinstance(a, argparse._SubParsersAction)]
    commands = [c.dest for sub in subactions for c in sub._choices_actions]
    assert commands, "parser exposes no subcommands?"
    for command in commands:
        assert f"## `repro {command}`" in text


def test_docs_cli_md_is_current():
    assert DOCS.exists(), "docs/cli.md missing — python -m repro.cli_reference docs/cli.md"
    assert DOCS.read_text() == render_cli_reference(), (
        "docs/cli.md is stale; regenerate with "
        "`PYTHONPATH=src python -m repro.cli_reference docs/cli.md`")
