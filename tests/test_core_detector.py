"""Tests for the ImDiffusion configuration, ensemble voting, thresholds and detector."""

import numpy as np
import pytest

from repro.core import (
    EnsembleVoter,
    ImDiffusionConfig,
    ImDiffusionDetector,
    apply_threshold,
    build_masks,
    percentile_threshold,
    pot_threshold,
    recommended_stride,
    select_voting_steps,
)
from repro.data import load_dataset


class TestConfig:
    def test_defaults_valid(self):
        config = ImDiffusionConfig()
        assert config.stride == config.window_size
        assert config.mode == "imputation"

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            ImDiffusionConfig(mode="other")

    def test_invalid_masking(self):
        with pytest.raises(ValueError):
            ImDiffusionConfig(masking="diagonal")

    def test_invalid_conditioning(self):
        with pytest.raises(ValueError):
            ImDiffusionConfig(conditioning="semi")

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            ImDiffusionConfig(window_size=2)

    def test_invalid_vote_fraction(self):
        with pytest.raises(ValueError):
            ImDiffusionConfig(vote_fraction=0.0)

    def test_with_overrides_returns_copy(self):
        config = ImDiffusionConfig()
        other = config.with_overrides(ensemble=False, hidden_dim=8)
        assert other.ensemble is False and other.hidden_dim == 8
        assert config.ensemble is True

    def test_explicit_stride_preserved(self):
        config = ImDiffusionConfig(window_size=40, stride=10)
        assert config.stride == 10


class TestThresholding:
    def test_percentile_threshold(self):
        errors = np.arange(100, dtype=float)
        assert percentile_threshold(errors, 90) == pytest.approx(89.1)

    def test_percentile_invalid(self):
        with pytest.raises(ValueError):
            percentile_threshold(np.arange(5), 0)
        with pytest.raises(ValueError):
            percentile_threshold(np.array([]), 50)

    def test_apply_threshold(self):
        labels = apply_threshold(np.array([0.1, 0.9, 0.5]), 0.5)
        np.testing.assert_array_equal(labels, [0, 1, 1])

    def test_pot_threshold_above_initial_quantile(self):
        rng = np.random.default_rng(0)
        errors = np.concatenate([rng.exponential(1.0, size=5000)])
        threshold = pot_threshold(errors, initial_quantile=0.95, risk=1e-3)
        assert threshold >= np.quantile(errors, 0.95)

    def test_pot_threshold_few_exceedances_falls_back(self):
        errors = np.ones(20)
        errors[-1] = 5.0
        threshold = pot_threshold(errors, initial_quantile=0.9)
        assert threshold == pytest.approx(np.quantile(errors, 0.9))

    def test_pot_invalid_inputs(self):
        with pytest.raises(ValueError):
            pot_threshold(np.array([]))
        with pytest.raises(ValueError):
            pot_threshold(np.arange(10), initial_quantile=1.5)


class TestVotingSteps:
    def test_last_step_always_included(self):
        for total in (5, 20, 50):
            steps = select_voting_steps(total, last_fraction=0.6, stride=3)
            assert steps[-1] == total

    def test_paper_configuration(self):
        # 50 steps, last 60 %, every 3rd: starts at step 21.
        steps = select_voting_steps(50, last_fraction=0.6, stride=3)
        assert steps[0] >= 21
        assert all(b - a == 3 for a, b in zip(steps[:-2], steps[1:-1]))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            select_voting_steps(0, 0.5, 3)
        with pytest.raises(ValueError):
            select_voting_steps(10, 0.0, 3)
        with pytest.raises(ValueError):
            select_voting_steps(10, 0.5, 0)


class TestEnsembleVoter:
    def _step_errors(self, length=50, num_steps=10, seed=0):
        rng = np.random.default_rng(seed)
        base = rng.random(length) * 0.1
        base[20:25] += 2.0  # clear anomaly
        errors = {}
        for step in range(1, num_steps + 1):
            noise_level = (num_steps - step + 1) / num_steps
            errors[step] = base + noise_level * rng.random(length) * 0.5
        return errors

    def test_vote_detects_clear_anomaly(self):
        voter = EnsembleVoter(error_percentile=90, vote_fraction=0.5)
        decision = voter.vote(self._step_errors())
        assert decision.labels[20:25].sum() >= 4
        assert decision.labels[:15].sum() == 0

    def test_votes_bounded_by_step_count(self):
        voter = EnsembleVoter()
        decision = voter.vote(self._step_errors())
        assert decision.votes.max() <= len(decision.voting_steps)

    def test_step_thresholds_scale_with_error_magnitude(self):
        voter = EnsembleVoter(error_percentile=95)
        errors = self._step_errors()
        decision = voter.vote(errors)
        final = max(errors)
        noisy = min(decision.voting_steps)
        # Noisier steps have larger total error, hence smaller thresholds.
        if noisy != final:
            assert decision.step_thresholds[noisy] <= decision.step_thresholds[final] + 1e-9

    def test_empty_errors_raise(self):
        with pytest.raises(ValueError):
            EnsembleVoter().vote({})
        with pytest.raises(ValueError):
            EnsembleVoter().single_step_labels({})

    def test_single_step_labels_use_final_only(self):
        voter = EnsembleVoter(error_percentile=90)
        errors = self._step_errors()
        labels = voter.single_step_labels(errors)
        assert labels.shape == errors[max(errors)].shape
        assert labels.sum() > 0

    def test_higher_vote_fraction_is_stricter(self):
        errors = self._step_errors(seed=3)
        lenient = EnsembleVoter(error_percentile=80, vote_fraction=0.2).vote(errors)
        strict = EnsembleVoter(error_percentile=80, vote_fraction=0.9).vote(errors)
        assert strict.labels.sum() <= lenient.labels.sum()


class TestModes:
    def test_imputation_masks_grating(self):
        config = ImDiffusionConfig(window_size=40)
        masks = build_masks(config, 40, 6)
        assert len(masks) == 2
        np.testing.assert_allclose(masks[0] + masks[1], 1.0)

    def test_imputation_masks_random(self):
        config = ImDiffusionConfig(window_size=40, masking="random")
        masks = build_masks(config, 40, 6)
        assert len(masks) == 2
        np.testing.assert_allclose(masks[0] + masks[1], 1.0)

    def test_forecasting_mask(self):
        config = ImDiffusionConfig(window_size=40, mode="forecasting")
        masks = build_masks(config, 40, 3)
        assert len(masks) == 1
        np.testing.assert_allclose(masks[0][:20], 1.0)
        np.testing.assert_allclose(masks[0][20:], 0.0)

    def test_reconstruction_mask(self):
        config = ImDiffusionConfig(window_size=40, mode="reconstruction")
        masks = build_masks(config, 40, 3)
        assert len(masks) == 1
        np.testing.assert_allclose(masks[0], 0.0)

    def test_recommended_stride(self):
        assert recommended_stride(ImDiffusionConfig(window_size=64)) == 64
        assert recommended_stride(ImDiffusionConfig(window_size=64, mode="forecasting")) == 32
        assert recommended_stride(ImDiffusionConfig(window_size=64, stride=16)) == 16


def _tiny_config(**overrides):
    defaults = dict(window_size=24, num_steps=6, epochs=1, hidden_dim=8, num_blocks=1,
                    num_heads=2, batch_size=4, max_train_windows=8,
                    num_masked_windows=3, num_unmasked_windows=3, seed=0)
    defaults.update(overrides)
    return ImDiffusionConfig(**defaults)


class TestImDiffusionDetector:
    @pytest.fixture(scope="class")
    def dataset(self):
        return load_dataset("GCP", seed=0, scale=0.08)

    @pytest.fixture(scope="class")
    def fitted(self, dataset):
        detector = ImDiffusionDetector(_tiny_config())
        detector.fit(dataset.train)
        return detector

    def test_fit_records_losses(self, fitted):
        assert len(fitted.train_losses) == 1
        assert np.isfinite(fitted.train_losses).all()

    def test_model_exposed_after_fit(self, fitted):
        assert fitted.model is not None
        assert fitted.model.num_parameters() > 0

    def test_score_keys_and_shapes(self, fitted, dataset):
        step_errors = fitted.score(dataset.test)
        assert sorted(step_errors) == list(range(1, 7))
        for errors in step_errors.values():
            assert errors.shape == (dataset.test.shape[0],)
            assert np.all(errors >= 0)

    def test_predict_output(self, fitted, dataset):
        result = fitted.predict(dataset.test)
        assert result.labels.shape == dataset.test_labels.shape
        assert set(np.unique(result.labels)).issubset({0, 1})
        assert result.scores.shape == result.labels.shape
        assert result.decision is not None
        assert result.inference_seconds > 0
        assert result.points_per_second > 0

    def test_predict_without_ensemble(self, dataset):
        detector = ImDiffusionDetector(_tiny_config(ensemble=False))
        result = detector.fit_predict(dataset.train, dataset.test)
        assert result.decision is None
        assert result.labels.shape == dataset.test_labels.shape

    def test_unfitted_raises(self, dataset):
        with pytest.raises(RuntimeError):
            ImDiffusionDetector(_tiny_config()).predict(dataset.test)

    def test_fit_rejects_bad_shapes(self):
        detector = ImDiffusionDetector(_tiny_config())
        with pytest.raises(ValueError):
            detector.fit(np.zeros(100))
        with pytest.raises(ValueError):
            detector.fit(np.zeros((10, 3)))

    def test_score_rejects_wrong_feature_count(self, fitted, dataset):
        with pytest.raises(ValueError):
            fitted.score(dataset.test[:, :3])

    def test_forecasting_and_reconstruction_modes_run(self, dataset):
        for mode in ("forecasting", "reconstruction"):
            detector = ImDiffusionDetector(_tiny_config(mode=mode))
            result = detector.fit_predict(dataset.train, dataset.test)
            assert result.labels.shape == dataset.test_labels.shape

    def test_conditional_mode_runs(self, dataset):
        detector = ImDiffusionDetector(_tiny_config(conditioning="conditional"))
        result = detector.fit_predict(dataset.train, dataset.test)
        assert result.labels.shape == dataset.test_labels.shape

    def test_detects_anomalies_better_than_chance(self, dataset):
        from repro.evaluation import precision_recall_f1

        detector = ImDiffusionDetector(_tiny_config(epochs=2, error_percentile=95.0))
        result = detector.fit_predict(dataset.train, dataset.test)
        scores = precision_recall_f1(result.labels, dataset.test_labels)
        # The anomaly rate is ~5-10 %; random guessing at the same alarm budget
        # would land far below this.
        assert scores.f1 > 0.3
