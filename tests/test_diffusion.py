"""Tests for noise schedules, the DDPM process and imputed diffusion models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion import (
    GaussianDiffusion,
    ImputedDiffusion,
    NoiseSchedule,
    cosine_beta_schedule,
    linear_beta_schedule,
    make_schedule,
    quadratic_beta_schedule,
)
from repro.masking import GratingMasking
from repro.models import ImTransformer
from repro.nn import Adam


class TestSchedules:
    @pytest.mark.parametrize("factory", [linear_beta_schedule, quadratic_beta_schedule,
                                         cosine_beta_schedule])
    def test_basic_properties(self, factory):
        schedule = factory(20)
        assert schedule.num_steps == 20
        assert np.all(schedule.betas > 0) and np.all(schedule.betas < 1)
        assert np.all(np.diff(schedule.alpha_bars) <= 1e-12)
        assert schedule.alpha_bars[-1] < schedule.alpha_bars[0]

    def test_alpha_bar_is_cumprod(self):
        schedule = linear_beta_schedule(10)
        np.testing.assert_allclose(schedule.alpha_bars, np.cumprod(1 - schedule.betas))

    def test_posterior_variance_bounds(self):
        schedule = quadratic_beta_schedule(15)
        for t in range(1, 16):
            variance = schedule.posterior_variance(t)
            assert 0 < variance <= schedule.betas[t - 1] + 1e-12

    def test_make_schedule_by_name(self):
        assert make_schedule("linear", 5).num_steps == 5
        with pytest.raises(KeyError):
            make_schedule("unknown", 5)

    def test_invalid_betas_rejected(self):
        with pytest.raises(ValueError):
            NoiseSchedule.from_betas(np.array([0.1, 1.5]))
        with pytest.raises(ValueError):
            NoiseSchedule.from_betas(np.array([]))

    @settings(max_examples=20, deadline=None)
    @given(steps=st.integers(min_value=2, max_value=100))
    def test_property_alpha_bars_monotone(self, steps):
        schedule = quadratic_beta_schedule(steps)
        assert np.all(np.diff(schedule.alpha_bars) < 0)
        assert 0 < schedule.alpha_bars[-1] < 1


class TestGaussianDiffusion:
    def setup_method(self):
        self.diffusion = GaussianDiffusion(linear_beta_schedule(30))
        self.rng = np.random.default_rng(0)

    def test_q_sample_shapes_and_reuse_of_noise(self):
        x0 = self.rng.normal(size=(4, 5))
        noise = self.rng.standard_normal(x0.shape)
        x_t, returned = self.diffusion.q_sample(x0, 10, noise=noise)
        assert x_t.shape == x0.shape
        np.testing.assert_allclose(returned, noise)

    def test_q_sample_final_step_is_mostly_noise(self):
        x0 = np.full((2000,), 5.0)
        x_t, _ = self.diffusion.q_sample(x0, 30, rng=self.rng)
        # alpha_bar at the last step is small, so the signal contribution shrinks.
        alpha_bar = self.diffusion.schedule.alpha_bars[-1]
        assert abs(x_t.mean() - 5.0 * np.sqrt(alpha_bar)) < 0.5

    def test_predict_x0_inverts_q_sample(self):
        x0 = self.rng.normal(size=(3, 4))
        for t in (1, 15, 30):
            x_t, noise = self.diffusion.q_sample(x0, t, rng=self.rng)
            recovered = self.diffusion.predict_x0_from_eps(x_t, t, noise)
            np.testing.assert_allclose(recovered, x0, atol=1e-10)

    def test_p_sample_step1_is_deterministic_mean(self):
        x1 = self.rng.normal(size=(2, 3))
        eps = self.rng.normal(size=(2, 3))
        out = self.diffusion.p_sample(x1, 1, eps, rng=self.rng)
        np.testing.assert_allclose(out, self.diffusion.posterior_mean_from_eps(x1, 1, eps))

    def test_p_sample_deterministic_flag(self):
        x_t = self.rng.normal(size=(2, 3))
        eps = self.rng.normal(size=(2, 3))
        a = self.diffusion.p_sample(x_t, 10, eps, rng=np.random.default_rng(1), deterministic=True)
        b = self.diffusion.p_sample(x_t, 10, eps, rng=np.random.default_rng(2), deterministic=True)
        np.testing.assert_allclose(a, b)

    def test_invalid_step_raises(self):
        with pytest.raises(ValueError):
            self.diffusion.q_sample(np.zeros(3), 0)
        with pytest.raises(ValueError):
            self.diffusion.q_sample(np.zeros(3), 31)

    def test_sample_timesteps_in_range(self):
        steps = self.diffusion.sample_timesteps(1000, self.rng)
        assert steps.min() >= 1 and steps.max() <= 30

    def test_reverse_chain_with_oracle_noise_recovers_x0(self):
        """With an oracle noise predictor (the exact eps implied by x_t and x0 at
        every step) the deterministic reverse chain converges back to x0."""
        x0 = self.rng.normal(size=(5,))
        t = 20
        x, _ = self.diffusion.q_sample(x0, t, rng=self.rng)
        start_error = np.abs(x - x0).mean()
        for step in range(t, 0, -1):
            alpha_bar = self.diffusion.schedule.alpha_bars[step - 1]
            oracle_eps = (x - np.sqrt(alpha_bar) * x0) / np.sqrt(1.0 - alpha_bar)
            x = self.diffusion.p_sample(x, step, oracle_eps, deterministic=True)
        assert np.abs(x - x0).mean() < 0.05 * max(start_error, 1e-8)


def _tiny_setup(conditioning="unconditional", seed=0, num_steps=8):
    rng = np.random.default_rng(seed)
    num_features, window = 4, 20
    model = ImTransformer(num_features=num_features, hidden_dim=8, num_blocks=1,
                          num_heads=2, rng=rng)
    diffusion = GaussianDiffusion(quadratic_beta_schedule(num_steps))
    imputer = ImputedDiffusion(model, diffusion, conditioning=conditioning)
    masks = GratingMasking(2, 2).masks(window, num_features)
    windows = np.stack([
        np.sin(np.linspace(0, 4 * np.pi, window))[:, None] * np.ones(num_features)
        for _ in range(2)
    ])
    mask_batch = np.stack([masks[0], masks[1]])
    policies = np.array([0, 1])
    return imputer, windows, mask_batch, policies, rng


class TestImputedDiffusion:
    def test_invalid_conditioning_rejected(self):
        imputer, *_ = _tiny_setup()
        with pytest.raises(ValueError):
            ImputedDiffusion(imputer.model, imputer.diffusion, conditioning="other")

    def test_training_loss_scalar_and_positive(self):
        imputer, windows, masks, policies, rng = _tiny_setup()
        loss = imputer.training_loss(windows, masks, policies, rng)
        assert loss.data.ndim == 0
        assert float(loss.data) > 0

    def test_training_loss_shape_mismatch(self):
        imputer, windows, masks, policies, rng = _tiny_setup()
        with pytest.raises(ValueError):
            imputer.training_loss(windows, masks[:, :10], policies, rng)

    def test_training_reduces_loss(self):
        imputer, windows, masks, policies, rng = _tiny_setup(seed=1)
        optimizer = Adam(imputer.model.parameters(), lr=5e-3)
        losses = []
        for _ in range(30):
            optimizer.zero_grad()
            loss = imputer.training_loss(windows, masks, policies, rng)
            loss.backward()
            optimizer.step()
            losses.append(float(loss.data))
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    def test_impute_preserves_observed_values(self):
        imputer, windows, masks, policies, rng = _tiny_setup()
        result = imputer.impute(windows, masks, policies, rng)
        observed = masks.astype(bool)
        np.testing.assert_allclose(result.final[observed], windows[observed])
        for _, estimate in result.intermediate:
            np.testing.assert_allclose(estimate[observed], windows[observed])

    def test_impute_step_ordering_and_count(self):
        imputer, windows, masks, policies, rng = _tiny_setup(num_steps=6)
        result = imputer.impute(windows, masks, policies, rng)
        assert result.steps() == list(range(6, 0, -1))

    def test_impute_x0_collection(self):
        imputer, windows, masks, policies, rng = _tiny_setup()
        result = imputer.impute(windows, masks, policies, rng, collect="x0")
        assert len(result.intermediate) == imputer.diffusion.num_steps

    def test_impute_invalid_collect(self):
        imputer, windows, masks, policies, rng = _tiny_setup()
        with pytest.raises(ValueError):
            imputer.impute(windows, masks, policies, rng, collect="bad")

    def test_imputation_error_zero_on_observed(self):
        imputer, windows, masks, policies, rng = _tiny_setup()
        result = imputer.impute(windows, masks, policies, rng)
        errors = imputer.imputation_error(windows, result, masks)
        for error in errors.values():
            assert np.all(error[masks.astype(bool)] == 0.0)
            assert np.all(error >= 0.0)

    def test_conditional_mode_uses_clean_reference(self):
        imputer, windows, masks, policies, rng = _tiny_setup(conditioning="conditional")
        loss = imputer.training_loss(windows, masks, policies, rng)
        assert np.isfinite(float(loss.data))
        result = imputer.impute(windows, masks, policies, rng)
        assert np.isfinite(result.final).all()

    def test_deterministic_impute_reproducible(self):
        imputer, windows, masks, policies, _ = _tiny_setup()
        a = imputer.impute(windows, masks, policies, np.random.default_rng(3),
                           deterministic=True)
        b = imputer.impute(windows, masks, policies, np.random.default_rng(3),
                           deterministic=True)
        np.testing.assert_allclose(a.final, b.final)


class TestImTransformer:
    def test_output_shape(self):
        rng = np.random.default_rng(0)
        model = ImTransformer(num_features=5, hidden_dim=8, num_blocks=2, num_heads=2, rng=rng)
        x = rng.normal(size=(3, 2, 5, 16))
        out = model(x, np.array([1, 2, 3]), np.array([0, 1, 0]))
        assert out.shape == (3, 5, 16)

    def test_wrong_channel_count_raises(self):
        model = ImTransformer(num_features=5, hidden_dim=8, num_blocks=1, num_heads=2)
        with pytest.raises(ValueError):
            model(np.zeros((1, 3, 5, 16)), np.array([1]), np.array([0]))

    def test_wrong_feature_count_raises(self):
        model = ImTransformer(num_features=5, hidden_dim=8, num_blocks=1, num_heads=2)
        with pytest.raises(ValueError):
            model(np.zeros((1, 2, 4, 16)), np.array([1]), np.array([0]))

    def test_ablation_flags_reduce_parameters(self):
        rng = np.random.default_rng(0)
        full = ImTransformer(5, hidden_dim=8, num_blocks=1, num_heads=2, rng=rng)
        no_spatial = ImTransformer(5, hidden_dim=8, num_blocks=1, num_heads=2,
                                   include_spatial=False, rng=rng)
        no_temporal = ImTransformer(5, hidden_dim=8, num_blocks=1, num_heads=2,
                                    include_temporal=False, rng=rng)
        assert no_spatial.num_parameters() < full.num_parameters()
        assert no_temporal.num_parameters() < full.num_parameters()

    def test_gradients_reach_all_parameters(self):
        rng = np.random.default_rng(1)
        model = ImTransformer(num_features=3, hidden_dim=8, num_blocks=2, num_heads=2, rng=rng)
        out = model(rng.normal(size=(2, 2, 3, 12)), np.array([1, 4]), np.array([0, 1]))
        (out * out).mean().backward()
        missing = [name for name, p in model.named_parameters() if p.grad is None]
        assert missing == []

    def test_different_steps_change_output(self):
        rng = np.random.default_rng(2)
        model = ImTransformer(num_features=3, hidden_dim=8, num_blocks=1, num_heads=2, rng=rng)
        x = rng.normal(size=(1, 2, 3, 12))
        out1 = model(x, np.array([1]), np.array([0])).data
        out2 = model(x, np.array([8]), np.array([0])).data
        assert not np.allclose(out1, out2)

    def test_different_policies_change_output(self):
        rng = np.random.default_rng(3)
        model = ImTransformer(num_features=3, hidden_dim=8, num_blocks=1, num_heads=2, rng=rng)
        x = rng.normal(size=(1, 2, 3, 12))
        out1 = model(x, np.array([2]), np.array([0])).data
        out2 = model(x, np.array([2]), np.array([1])).data
        assert not np.allclose(out1, out2)


class TestEmbeddings:
    def test_sinusoidal_shape_and_range(self):
        from repro.models import sinusoidal_embedding

        emb = sinusoidal_embedding(np.arange(10), 16)
        assert emb.shape == (10, 16)
        assert np.abs(emb).max() <= 1.0 + 1e-12

    def test_sinusoidal_odd_dim_raises(self):
        from repro.models import sinusoidal_embedding

        with pytest.raises(ValueError):
            sinusoidal_embedding(np.arange(4), 5)

    def test_complementary_embedding_shape(self):
        from repro.models import ComplementaryEmbedding

        emb = ComplementaryEmbedding(num_features=6, hidden_dim=8,
                                     rng=np.random.default_rng(0))
        out = emb(12)
        assert out.shape == (1, 8, 6, 12)

    def test_step_embedding_distinguishes_steps(self):
        from repro.models import DiffusionStepEmbedding

        emb = DiffusionStepEmbedding(hidden_dim=8, rng=np.random.default_rng(0))
        out = emb(np.array([1, 50])).data
        assert out.shape == (2, 8)
        assert not np.allclose(out[0], out[1])
