"""Tests for the evaluation metrics (point-adjust P/R/F1, R-AUC-PR, ADD) and runner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import (
    EvaluationSummary,
    RunMetrics,
    anomaly_segments,
    auc_pr,
    average_detection_delay,
    average_summaries,
    detection_delays,
    evaluate_detector,
    evaluate_labels,
    format_results_table,
    point_adjust,
    precision_recall_f1,
    range_auc_pr,
    soft_range_labels,
)


class TestSegments:
    def test_basic_segments(self):
        labels = np.array([0, 1, 1, 0, 0, 1, 0, 1, 1, 1])
        assert anomaly_segments(labels) == [(1, 3), (5, 6), (7, 10)]

    def test_no_segments(self):
        assert anomaly_segments(np.zeros(5)) == []

    def test_all_anomalous(self):
        assert anomaly_segments(np.ones(4)) == [(0, 4)]

    def test_non_1d_raises(self):
        with pytest.raises(ValueError):
            anomaly_segments(np.zeros((2, 2)))


class TestPointAdjust:
    def test_single_hit_fills_segment(self):
        actual = np.array([0, 1, 1, 1, 0])
        predicted = np.array([0, 0, 1, 0, 0])
        adjusted = point_adjust(predicted, actual)
        np.testing.assert_array_equal(adjusted, [0, 1, 1, 1, 0])

    def test_missed_segment_unchanged(self):
        actual = np.array([0, 1, 1, 0, 1, 1])
        predicted = np.array([0, 0, 0, 0, 1, 0])
        adjusted = point_adjust(predicted, actual)
        np.testing.assert_array_equal(adjusted, [0, 0, 0, 0, 1, 1])

    def test_false_positives_preserved(self):
        actual = np.array([0, 0, 0, 1])
        predicted = np.array([1, 0, 0, 1])
        adjusted = point_adjust(predicted, actual)
        np.testing.assert_array_equal(adjusted, [1, 0, 0, 1])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            point_adjust(np.zeros(3), np.zeros(4))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_property_adjustment_never_decreases_recall(self, seed):
        rng = np.random.default_rng(seed)
        actual = (rng.random(100) < 0.2).astype(int)
        predicted = (rng.random(100) < 0.1).astype(int)
        raw = precision_recall_f1(predicted, actual, adjust=False)
        adjusted = precision_recall_f1(predicted, actual, adjust=True)
        assert adjusted.recall >= raw.recall - 1e-12


class TestPrecisionRecallF1:
    def test_perfect_prediction(self):
        actual = np.array([0, 1, 1, 0])
        scores = precision_recall_f1(actual, actual)
        assert scores.precision == scores.recall == scores.f1 == 1.0

    def test_no_predictions(self):
        actual = np.array([0, 1, 1, 0])
        scores = precision_recall_f1(np.zeros(4, dtype=int), actual)
        assert scores.precision == 0.0 and scores.recall == 0.0 and scores.f1 == 0.0

    def test_known_values_without_adjustment(self):
        actual = np.array([1, 1, 0, 0])
        predicted = np.array([1, 0, 1, 0])
        scores = precision_recall_f1(predicted, actual, adjust=False)
        assert scores.precision == pytest.approx(0.5)
        assert scores.recall == pytest.approx(0.5)
        assert scores.f1 == pytest.approx(0.5)

    def test_adjustment_improves_recall(self):
        actual = np.array([0, 1, 1, 1, 1, 0])
        predicted = np.array([0, 0, 0, 1, 0, 0])
        raw = precision_recall_f1(predicted, actual, adjust=False)
        adjusted = precision_recall_f1(predicted, actual, adjust=True)
        assert adjusted.recall > raw.recall
        assert adjusted.f1 > raw.f1


class TestRangeAucPr:
    def test_perfect_scores_give_high_auc(self):
        labels = np.zeros(200, dtype=int)
        labels[50:70] = 1
        scores = labels.astype(float) + np.random.default_rng(0).normal(0, 0.01, 200)
        # The buffer regions dilute recall even for a perfect detector, so the
        # ceiling is below 1.0 (this matches the low absolute R-AUC-PR values
        # reported in the paper); without a buffer the score is exactly 1.
        assert range_auc_pr(scores, labels) > 0.7
        assert range_auc_pr(scores, labels, buffer_size=0) == pytest.approx(1.0)

    def test_random_scores_give_low_auc(self):
        rng = np.random.default_rng(1)
        labels = np.zeros(500, dtype=int)
        labels[100:120] = 1
        scores = rng.random(500)
        assert range_auc_pr(scores, labels) < 0.5

    def test_no_anomalies_returns_zero(self):
        assert range_auc_pr(np.random.rand(50), np.zeros(50, dtype=int)) == 0.0

    def test_shifted_detection_rewarded_by_buffer(self):
        labels = np.zeros(300, dtype=int)
        labels[100:130] = 1
        # Detector fires slightly before the event.
        early_scores = np.zeros(300)
        early_scores[95:105] = 1.0
        with_buffer = range_auc_pr(early_scores, labels, buffer_size=10)
        without_buffer = range_auc_pr(early_scores, labels, buffer_size=0)
        assert with_buffer >= without_buffer

    def test_soft_labels_ramp(self):
        labels = np.zeros(20, dtype=int)
        labels[10:12] = 1
        soft = soft_range_labels(labels, buffer_size=2)
        assert soft[10] == 1.0 and soft[11] == 1.0
        assert 0 < soft[9] < 1.0
        assert soft[8] < soft[9]
        assert soft[0] == 0.0

    def test_soft_labels_negative_buffer_raises(self):
        with pytest.raises(ValueError):
            soft_range_labels(np.zeros(5), -1)

    def test_auc_pr_shape_mismatch(self):
        with pytest.raises(ValueError):
            auc_pr(np.zeros(3), np.zeros(4))

    def test_score_ordering_matters_not_scale(self):
        labels = np.zeros(100, dtype=int)
        labels[40:60] = 1
        scores = np.random.default_rng(2).random(100) + labels * 2
        a = range_auc_pr(scores, labels)
        b = range_auc_pr(scores * 1000.0, labels)
        assert a == pytest.approx(b)


class TestDetectionDelay:
    def test_immediate_detection_zero_delay(self):
        actual = np.array([0, 0, 1, 1, 1, 0])
        predicted = np.array([0, 0, 1, 0, 0, 0])
        assert detection_delays(predicted, actual) == [0]

    def test_delayed_detection(self):
        actual = np.array([0, 1, 1, 1, 0, 0])
        predicted = np.array([0, 0, 0, 1, 0, 0])
        assert detection_delays(predicted, actual) == [2]

    def test_missed_event_charged_full_horizon(self):
        actual = np.array([0, 1, 1, 0, 0, 0])
        predicted = np.zeros(6, dtype=int)
        # Horizon runs from the event start to the end of the series (5 steps).
        assert detection_delays(predicted, actual) == [5]

    def test_detection_after_event_counts_with_horizon(self):
        actual = np.array([0, 1, 1, 0, 0, 0, 0])
        predicted = np.array([0, 0, 0, 0, 1, 0, 0])
        assert detection_delays(predicted, actual) == [3]

    def test_max_horizon_caps_delay(self):
        actual = np.array([0, 1, 1, 0, 0, 0, 0, 0])
        predicted = np.zeros(8, dtype=int)
        assert detection_delays(predicted, actual, max_horizon=3) == [3]

    def test_multiple_events(self):
        actual = np.array([1, 1, 0, 0, 1, 1, 1, 0])
        predicted = np.array([0, 1, 0, 0, 0, 0, 1, 0])
        assert detection_delays(predicted, actual) == [1, 2]

    def test_average_no_events(self):
        assert average_detection_delay(np.zeros(5), np.zeros(5)) == 0.0

    def test_average_value(self):
        actual = np.array([1, 1, 0, 1, 1, 0])
        predicted = np.array([0, 1, 0, 1, 0, 0])
        assert average_detection_delay(predicted, actual) == pytest.approx(0.5)


class _ConstantDetector:
    """Flags the top-q fraction of a simple deviation score — used to test the runner."""

    def __init__(self, seed: int = 0, quantile: float = 0.95) -> None:
        self.seed = seed
        self.quantile = quantile
        self._center = None

    def fit(self, train):
        self._center = np.median(train, axis=0)
        return self

    def predict(self, test):
        scores = np.abs(test - self._center).mean(axis=1)
        threshold = np.quantile(scores, self.quantile)
        return (scores >= threshold).astype(int), scores


class TestRunner:
    def _dataset(self):
        from repro.data import load_dataset

        return load_dataset("GCP", seed=0, scale=0.1)

    def test_evaluate_labels_returns_metrics(self):
        actual = np.array([0, 1, 1, 0, 0])
        labels = np.array([0, 1, 0, 0, 0])
        scores = np.array([0.1, 0.9, 0.8, 0.2, 0.1])
        metrics = evaluate_labels(labels, scores, actual)
        assert isinstance(metrics, RunMetrics)
        assert 0 <= metrics.f1 <= 1

    def test_evaluate_detector_multi_run(self):
        dataset = self._dataset()
        summary = evaluate_detector(lambda seed: _ConstantDetector(seed), dataset,
                                    num_runs=2, detector_name="Constant")
        assert summary.detector == "Constant"
        assert summary.dataset == "GCP"
        assert len(summary.runs) == 2
        assert 0 <= summary.f1 <= 1
        assert summary.f1_std >= 0

    def test_evaluate_detector_invalid_runs(self):
        with pytest.raises(ValueError):
            evaluate_detector(lambda seed: _ConstantDetector(seed), self._dataset(), num_runs=0)

    def test_average_summaries(self):
        run = RunMetrics(precision=1.0, recall=0.5, f1=2 / 3, r_auc_pr=0.4, add=10.0)
        a = EvaluationSummary(detector="D", dataset="X", runs=[run])
        b = EvaluationSummary(detector="D", dataset="Y", runs=[run, run])
        averaged = average_summaries([a, b])
        assert averaged["precision"] == pytest.approx(1.0)
        assert averaged["add"] == pytest.approx(10.0)

    def test_average_summaries_empty_raises(self):
        with pytest.raises(ValueError):
            average_summaries([])

    def test_format_results_table(self):
        run = RunMetrics(precision=0.9, recall=0.8, f1=0.85, r_auc_pr=0.3, add=12.0)
        summary = EvaluationSummary(detector="ImDiffusion", dataset="SMD", runs=[run])
        table = format_results_table([summary])
        assert "ImDiffusion" in table
        assert "SMD" in table
        assert "0.8500" in table
