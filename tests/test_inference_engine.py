"""Sharded inference engine: determinism, transport, wiring, cleanup.

The contract under test mirrors the data-parallel training engine:

* all randomness is drawn in the parent, in plan order, so
  ``draw_impute_noise`` + noise-injected ``impute`` is **bit-identical** to
  the internal-rng path (including the generator's end state),
* :class:`SerialScoreReducer` reproduces the pre-engine inline scoring loop
  bit for bit, and :class:`MultiprocessScoreReducer` reproduces the serial
  reducer for **every** worker count (1-worker = the bit-identity gate),
* parameters cross to the workers through the shared-memory transport, so
  per-step pipe messages do not scale with the parameter count (gradient
  and scoring reducers alike),
* ``close()`` is idempotent everywhere and the atexit cleanup registry
  reaps leaked pools/blocks without resource-tracker warnings.
"""

from __future__ import annotations

import pickle
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro import ImDiffusionConfig, ImDiffusionDetector
from repro.core.detector import ImputationLossSpec, ImputationScoreSpec
from repro.core.modes import build_masks
from repro.diffusion import ImputeNoise
from repro.inference import (
    MultiprocessScoreReducer,
    ScoreTask,
    SerialScoreReducer,
    WorkerPool,
)
from repro.training import MultiprocessReducer
from repro.training.parallel import _shard_bounds
from repro.training.trainer import Batch, TrainState


def _config(**overrides):
    base = dict(window_size=16, num_steps=4, epochs=1, hidden_dim=8,
                num_blocks=1, num_heads=2, batch_size=4,
                num_masked_windows=2, num_unmasked_windows=2,
                max_train_windows=16, train_stride=8, seed=0)
    base.update(overrides)
    return ImDiffusionConfig(**base)


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    train = rng.standard_normal((120, 3))
    return ImDiffusionDetector(_config()).fit(train)


@pytest.fixture(scope="module")
def test_series():
    return np.random.default_rng(1).standard_normal((64, 3))


def _windows(fitted, count=10, seed=5):
    config = fitted.config
    return np.random.default_rng(seed).standard_normal(
        (count, config.window_size, fitted.num_features))


class ExplodingSpec(ImputationScoreSpec):
    """Module-level (spawn needs to pickle it) spec whose kernel always fails."""

    def compute(self, windows, task, payload):
        raise ValueError("boom in the worker")


# ---------------------------------------------------------------------------
# Parent-side noise drawing: draw o impute == internal-rng impute
# ---------------------------------------------------------------------------
class TestDrawImputeNoise:
    def _run_both(self, fitted, deterministic=False):
        config = fitted.config
        imputer = fitted._imputer
        sampler = config.build_sampler()
        mask = build_masks(config, config.window_size, fitted.num_features)[0]
        windows = _windows(fitted, count=3)
        batch_masks = np.broadcast_to(mask, windows.shape)
        policies = np.zeros(windows.shape[0], dtype=np.int64)

        rng_internal = np.random.default_rng(99)
        internal = imputer.impute(windows, batch_masks, policies, rng_internal,
                                  sampler=sampler, deterministic=deterministic)

        rng_injected = np.random.default_rng(99)
        noise = imputer.draw_impute_noise(windows, rng_injected,
                                          sampler=sampler,
                                          deterministic=deterministic)
        injected = imputer.impute(windows, batch_masks, policies, rng=None,
                                  sampler=sampler, deterministic=deterministic,
                                  noise=noise)
        return internal, injected, rng_internal, rng_injected

    def test_injected_noise_is_bit_identical(self, fitted):
        internal, injected, rng_a, rng_b = self._run_both(fitted)
        assert np.array_equal(internal.final, injected.final)
        for (step_a, est_a), (step_b, est_b) in zip(internal.intermediate,
                                                    injected.intermediate):
            assert step_a == step_b
            assert np.array_equal(est_a, est_b)
        # The parent-side draw consumed the stream exactly as impute would.
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_deterministic_trajectory_matches_too(self, fitted):
        internal, injected, rng_a, rng_b = self._run_both(fitted,
                                                          deterministic=True)
        assert np.array_equal(internal.final, injected.final)
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_impute_requires_rng_or_noise(self, fitted):
        config = fitted.config
        mask = build_masks(config, config.window_size, fitted.num_features)[0]
        windows = _windows(fitted, count=2)
        with pytest.raises(ValueError, match="rng"):
            fitted._imputer.impute(
                windows, np.broadcast_to(mask, windows.shape),
                np.zeros(2, dtype=np.int64), rng=None)

    def test_shard_slices_every_component(self, fitted):
        imputer = fitted._imputer
        sampler = fitted.config.build_sampler()
        windows = _windows(fitted, count=6)
        noise = imputer.draw_impute_noise(windows, np.random.default_rng(3),
                                          sampler=sampler)
        part = noise.shard(2, 5)
        assert isinstance(part, ImputeNoise)
        assert part.batch_size == 3
        assert np.array_equal(part.prior, noise.prior[2:5])
        for full, sliced in zip(noise.reference, part.reference):
            assert np.array_equal(sliced, full[2:5])
        for full, sliced in zip(noise.transition, part.transition):
            if full is None:
                assert sliced is None
            else:
                assert np.array_equal(sliced, full[2:5])


# ---------------------------------------------------------------------------
# The score spec and the serial reducer
# ---------------------------------------------------------------------------
class TestImputationScoreSpec:
    def test_plan_is_policy_major_chunk_minor(self, fitted):
        spec = ImputationScoreSpec(fitted)
        num_masks = len(spec.masks)
        plan = spec.plan(10)  # batch_size=4 -> chunks (0,4) (4,8) (8,10)
        assert len(plan) == 3 * num_masks
        expected = [(p, s, min(s + 4, 10))
                    for p in range(num_masks) for s in (0, 4, 8)]
        assert [(t.policy_index, t.start, t.stop) for t in plan] == expected
        assert plan[-1].size == 2

    def test_requires_a_fitted_detector(self):
        with pytest.raises(RuntimeError, match="fitted"):
            ImputationScoreSpec(ImDiffusionDetector(_config()))

    def test_spec_survives_pickling(self, fitted):
        spec = pickle.loads(pickle.dumps(ImputationScoreSpec(fitted)))
        params = spec.build()
        assert len(params) == len(fitted._imputer.model.parameters())


class TestSerialScoreReducer:
    def test_equals_the_legacy_inline_loop(self, fitted):
        config = fitted.config
        windows = _windows(fitted, count=9)
        masks = build_masks(config, config.window_size, fitted.num_features)
        sampler = config.build_sampler()

        rng_legacy = np.random.default_rng(11)
        batch = windows.shape[0]
        legacy = {}
        for policy_index, mask in enumerate(masks):
            for chunk_start in range(0, batch, config.batch_size):
                chunk = windows[chunk_start:chunk_start + config.batch_size]
                for progress, squared in fitted._impute_window_errors(
                        chunk, mask, policy_index, rng_legacy, sampler=sampler):
                    if progress not in legacy:
                        legacy[progress] = np.zeros(
                            (batch,) + squared.shape[1:])
                    legacy[progress][chunk_start:chunk_start + chunk.shape[0]] \
                        += squared

        rng_spec = np.random.default_rng(11)
        totals = SerialScoreReducer(ImputationScoreSpec(fitted)).window_errors(
            windows, rng_spec)

        assert set(totals) == set(legacy)
        for progress in legacy:
            assert np.array_equal(totals[progress], legacy[progress])
        assert rng_legacy.bit_generator.state == rng_spec.bit_generator.state

    def test_custom_on_result_sees_plan_order(self, fitted):
        windows = _windows(fitted, count=6)
        seen = []
        result = SerialScoreReducer(ImputationScoreSpec(fitted)).window_errors(
            windows, np.random.default_rng(0),
            on_result=lambda task, errors: seen.append(task))
        assert result is None
        assert seen == ImputationScoreSpec(fitted).plan(6)


# ---------------------------------------------------------------------------
# The multiprocess reducer: worker-count invariance and bit-identity
# ---------------------------------------------------------------------------
class TestMultiprocessScoreReducer:
    def test_rejects_zero_workers(self, fitted):
        with pytest.raises(ValueError, match="at least 1"):
            MultiprocessScoreReducer(ImputationScoreSpec(fitted), 0)

    def test_one_worker_is_bit_identical_to_serial(self, fitted):
        windows = _windows(fitted, count=7)
        rng_serial = np.random.default_rng(21)
        serial = SerialScoreReducer(ImputationScoreSpec(fitted)).window_errors(
            windows, rng_serial)

        rng_pool = np.random.default_rng(21)
        with MultiprocessScoreReducer(ImputationScoreSpec(fitted), 1) as reducer:
            pooled = reducer.window_errors(windows, rng_pool)

        assert set(serial) == set(pooled)
        for progress in serial:
            assert np.array_equal(serial[progress], pooled[progress])
        assert rng_serial.bit_generator.state == rng_pool.bit_generator.state

    def test_two_workers_match_and_pool_persists_across_batches(self, fitted):
        windows = _windows(fitted, count=7)
        rng_serial = np.random.default_rng(22)
        serial_reducer = SerialScoreReducer(ImputationScoreSpec(fitted))
        serial_one = serial_reducer.window_errors(windows, rng_serial)
        serial_two = serial_reducer.window_errors(windows[:3], rng_serial)

        rng_pool = np.random.default_rng(22)
        with MultiprocessScoreReducer(ImputationScoreSpec(fitted), 2) as reducer:
            pooled_one = reducer.window_errors(windows, rng_pool)
            pooled_two = reducer.window_errors(windows[:3], rng_pool)

        for serial, pooled in ((serial_one, pooled_one),
                               (serial_two, pooled_two)):
            for progress in serial:
                assert np.array_equal(serial[progress], pooled[progress])
        assert rng_serial.bit_generator.state == rng_pool.bit_generator.state

    def test_close_is_idempotent_and_reopen_works(self, fitted):
        reducer = MultiprocessScoreReducer(ImputationScoreSpec(fitted), 1)
        reducer.open()
        reducer.close()
        reducer.close()
        # window_errors self-heals by reopening the pool.
        totals = reducer.window_errors(_windows(fitted, count=2),
                                       np.random.default_rng(0))
        assert totals
        reducer.close()

    def test_worker_failure_raises_and_tears_the_pool_down(self, fitted):
        reducer = MultiprocessScoreReducer(ExplodingSpec(fitted), 1)
        with reducer:
            with pytest.raises(RuntimeError, match="boom in the worker"):
                reducer.window_errors(_windows(fitted, count=2),
                                      np.random.default_rng(0))
            # The failed batch closed the pool so lockstep cannot desync.
            assert reducer._pool is None


class TestDetectorScoreWorkers:
    def test_score_workers_must_be_positive(self, fitted, test_series):
        with pytest.raises(ValueError, match="at least 1"):
            fitted.score(test_series, score_workers=0)

    def test_parallel_scores_and_labels_match_serial(self, fitted, test_series):
        import copy

        serial_det = copy.deepcopy(fitted)
        pooled_det = copy.deepcopy(fitted)
        serial = serial_det.predict(test_series)
        pooled = pooled_det.predict(test_series, score_workers=2)
        assert np.array_equal(serial.scores, pooled.scores)
        assert np.array_equal(serial.labels, pooled.labels)
        for progress in serial.step_errors:
            assert np.array_equal(serial.step_errors[progress],
                                  pooled.step_errors[progress])
        assert (serial_det._rng.bit_generator.state
                == pooled_det._rng.bit_generator.state)


# ---------------------------------------------------------------------------
# Zero-copy transport: per-step messages never scale with the model
# ---------------------------------------------------------------------------
class TestSharedMemoryTransport:
    def _step_message_bytes(self, hidden_dim, num_blocks):
        config = _config(hidden_dim=hidden_dim, num_blocks=num_blocks)
        rng = np.random.default_rng(0)
        detector = ImDiffusionDetector(config).fit(
            rng.standard_normal((120, 3)))
        masks = build_masks(config, config.window_size, 3)
        spec = ImputationLossSpec(detector._imputer, np.stack(masks))
        reducer = MultiprocessReducer(spec, 2)
        windows = rng.standard_normal((8, config.window_size, 3))
        batch = Batch(arrays=(windows,), indices=np.arange(8))
        payload = spec.draw(batch, np.random.default_rng(1), TrainState())
        start, stop = _shard_bounds(batch.size, 2)[0]
        message = reducer._compose_step_message(
            "loss", 7, batch, payload, TrainState(), start, stop)
        return len(pickle.dumps(message)), detector

    def test_gradient_step_bytes_independent_of_parameter_count(self):
        small_bytes, small_det = self._step_message_bytes(8, 1)
        large_bytes, large_det = self._step_message_bytes(32, 2)
        small_params = sum(p.data.size
                           for p in small_det._imputer.model.parameters())
        large_params = sum(p.data.size
                           for p in large_det._imputer.model.parameters())
        assert large_params > 4 * small_params
        assert small_bytes == large_bytes

    def test_score_task_bytes_independent_of_parameter_count(self, fitted):
        def task_message_bytes(detector):
            spec = ImputationScoreSpec(detector)
            windows = _windows(detector, count=4)
            task = ScoreTask(policy_index=0, start=0, stop=4)
            payload = spec.draw(windows, task, np.random.default_rng(2))
            return len(pickle.dumps((7, task, windows[0:4], payload)))

        rng = np.random.default_rng(0)
        large = ImDiffusionDetector(
            _config(hidden_dim=32, num_blocks=2)).fit(
                rng.standard_normal((120, 3)))
        assert task_message_bytes(fitted) == task_message_bytes(large)


# ---------------------------------------------------------------------------
# WorkerPool and the cleanup registry
# ---------------------------------------------------------------------------
class TestWorkerPool:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="at least 1"):
            WorkerPool(lambda conn: None, (), 0)

    def test_close_before_start_and_double_close(self):
        pool = WorkerPool(lambda conn: None, (), 2)
        pool.close()
        assert not pool.is_open
        pool.close()


class TestCleanupRegistry:
    def test_leaked_reducers_are_reaped_at_exit_without_warnings(self, tmp_path):
        # A process that opens scoring workers and a shared parameter block,
        # then exits without closing anything: the atexit cleanup registry
        # must shut the pool down and unlink the segment, with no
        # resource_tracker "leaked" complaints on stderr.
        script = tmp_path / "leaky.py"
        script.write_text(textwrap.dedent("""\
            import numpy as np
            from repro.core import ImDiffusionConfig, ImDiffusionDetector
            from repro.core.detector import ImputationScoreSpec
            from repro.inference import MultiprocessScoreReducer

            def main():
                config = ImDiffusionConfig(
                    window_size=8, num_steps=2, epochs=1, hidden_dim=8,
                    num_blocks=1, num_heads=2, batch_size=4,
                    num_masked_windows=1, num_unmasked_windows=1,
                    max_train_windows=8, train_stride=8, seed=0)
                rng = np.random.default_rng(0)
                detector = ImDiffusionDetector(config).fit(
                    rng.standard_normal((40, 2)))
                reducer = MultiprocessScoreReducer(
                    ImputationScoreSpec(detector), 1)
                reducer.open()
                reducer.window_errors(
                    rng.standard_normal((2, 8, 2)), np.random.default_rng(1))
                raise SystemExit(3)

            if __name__ == "__main__":
                main()
            """))
        result = subprocess.run(
            [sys.executable, str(script)], capture_output=True, text=True,
            timeout=300)
        assert result.returncode == 3, result.stderr
        assert "leaked" not in result.stderr, result.stderr
        assert "Traceback" not in result.stderr, result.stderr

    def test_training_reducer_close_is_idempotent(self, fitted):
        masks = build_masks(fitted.config, fitted.config.window_size, 3)
        spec = ImputationLossSpec(fitted._imputer, np.stack(masks))
        reducer = MultiprocessReducer(spec, 2)
        # Never opened: close must still be a no-op, twice.
        reducer.close()
        reducer.close()

    def test_gradient_reducer_is_a_context_manager(self, fitted):
        masks = build_masks(fitted.config, fitted.config.window_size, 3)
        spec = ImputationLossSpec(fitted._imputer, np.stack(masks))
        with MultiprocessReducer(spec, 2) as reducer:
            assert reducer._pool is None  # entering does not acquire
        reducer.close()
