"""End-to-end integration tests spanning data, detector, baselines and evaluation.

These tests exercise the exact code paths the benchmark harness and the
examples use, at a miniature scale, so regressions in the glue between
packages are caught by ``pytest tests/`` without running the full benchmarks.
"""

import numpy as np
import pytest

from repro import ImDiffusionConfig, ImDiffusionDetector
from repro.baselines import IsolationForestDetector, LSTMADDetector
from repro.data import MicroserviceLatencySimulator, ProductionConfig, load_dataset
from repro.data.production import ProductionTrace
from repro.evaluation import average_summaries, evaluate_detector, evaluate_labels
from repro.production import LegacyThresholdDetector, compare_with_legacy, run_online_evaluation


def tiny_imdiffusion(seed=0, **overrides):
    defaults = dict(window_size=24, num_steps=6, epochs=2, hidden_dim=8, num_blocks=1,
                    num_heads=2, batch_size=4, max_train_windows=12, train_stride=12,
                    num_masked_windows=3, num_unmasked_windows=3,
                    deterministic_inference=True, collect="x0", seed=seed)
    defaults.update(overrides)
    return ImDiffusionDetector(ImDiffusionConfig(**defaults))


class TestEndToEndDetection:
    def test_imdiffusion_through_runner(self):
        dataset = load_dataset("GCP", seed=0, scale=0.08)
        summary = evaluate_detector(lambda seed: tiny_imdiffusion(seed=seed), dataset,
                                    num_runs=1, detector_name="ImDiffusion")
        assert summary.detector == "ImDiffusion"
        assert 0.0 <= summary.f1 <= 1.0
        assert summary.add >= 0.0

    def test_multiple_detectors_aggregate(self):
        dataset = load_dataset("GCP", seed=0, scale=0.08)
        summaries = []
        for name, factory in {
            "IForest": lambda seed: IsolationForestDetector(num_trees=15, seed=seed),
            "LSTM-AD": lambda seed: LSTMADDetector(history=8, epochs=1, seed=seed,
                                                   max_train_samples=64),
        }.items():
            summaries.append(evaluate_detector(factory, dataset, num_runs=1,
                                               detector_name=name))
        averaged = average_summaries(summaries)
        assert set(averaged) == {"precision", "recall", "f1", "f1_std", "r_auc_pr",
                                 "add", "train_seconds", "train_epochs"}
        # LSTM-AD trains through the shared engine, so its cost is recorded.
        assert averaged["train_seconds"] > 0.0

    def test_train_stride_increases_training_windows(self):
        dataset = load_dataset("GCP", seed=0, scale=0.08)
        sparse = tiny_imdiffusion(train_stride=24, max_train_windows=None)
        dense = tiny_imdiffusion(train_stride=6, max_train_windows=None)
        sparse.fit(dataset.train)
        dense.fit(dataset.train)
        # More overlapping windows means more batches per epoch; both must train fine.
        assert len(dense.train_losses) == len(sparse.train_losses) == 2
        assert np.isfinite(dense.train_losses).all()

    def test_detector_improves_over_trivial_threshold_on_easy_data(self):
        dataset = load_dataset("SMD", seed=1, scale=0.08)
        detector = tiny_imdiffusion(epochs=3, error_percentile=96.0)
        result = detector.fit_predict(dataset.train, dataset.test)
        metrics = evaluate_labels(result.labels, result.scores, dataset.test_labels)
        # Random guessing with a 4 % alarm budget yields F1 near the anomaly rate.
        assert metrics.f1 > dataset.anomaly_ratio


class TestEndToEndProduction:
    def test_full_production_pipeline(self):
        config = ProductionConfig(num_services=6, train_days=3, test_days=2, seed=5)
        raw = MicroserviceLatencySimulator(config).generate()
        trace = ProductionTrace(train=np.log(raw.train), test=np.log(raw.test),
                                test_labels=raw.test_labels, segments=raw.segments)
        legacy = run_online_evaluation(LegacyThresholdDetector(seed=0), trace, rescore_every=48)
        candidate = run_online_evaluation(
            tiny_imdiffusion(window_size=32, num_masked_windows=4, num_unmasked_windows=4,
                             error_percentile=92.0),
            trace, rescore_every=64)
        comparison = compare_with_legacy(candidate, legacy)
        assert np.isfinite(comparison["f1_improvement"]) or comparison["f1_improvement"] == float("inf")
        assert comparison["inference_points_per_second"] > 0


class TestModelPersistence:
    def test_imtransformer_round_trip_preserves_outputs(self, tmp_path):
        """Saving and re-loading the trained denoiser reproduces its predictions.

        The detector's end-to-end scores involve fresh reference noise at every
        reverse step (that stochasticity is part of the method), so the check
        is done at the model level with a fixed input.
        """
        from repro.nn import load_module, save_module

        dataset = load_dataset("GCP", seed=0, scale=0.08)
        detector = tiny_imdiffusion()
        detector.fit(dataset.train)

        rng = np.random.default_rng(0)
        x_in = rng.normal(size=(2, 2, dataset.num_features, 24))
        steps = np.array([1, 4])
        policies = np.array([0, 1])
        reference = detector.model(x_in, steps, policies).data

        path = str(tmp_path / "imtransformer.npz")
        save_module(detector.model, path)

        fresh = tiny_imdiffusion()
        fresh.fit(dataset.train[: dataset.train.shape[0] // 2])  # different weights
        assert not np.allclose(fresh.model(x_in, steps, policies).data, reference)
        load_module(fresh.model, path)
        np.testing.assert_allclose(fresh.model(x_in, steps, policies).data, reference,
                                   rtol=1e-10, atol=1e-12)
