"""Tests for the grating and random masking strategies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.masking import GratingMasking, RandomMasking, validate_masks


class TestGratingMasking:
    def test_two_complementary_policies(self):
        masks = GratingMasking(5, 5).masks(100, 4)
        assert len(masks) == 2
        np.testing.assert_allclose(masks[0] + masks[1], np.ones((100, 4)))

    def test_masks_cover_every_position(self):
        masks = GratingMasking(5, 5).masks(100, 7)
        validate_masks(masks)

    def test_alternating_chunks(self):
        masks = GratingMasking(2, 2).masks(40, 1)
        mask = masks[0][:, 0]
        # 4 chunks of 10: masked, observed, masked, observed.
        np.testing.assert_allclose(mask[:10], 0.0)
        np.testing.assert_allclose(mask[10:20], 1.0)
        np.testing.assert_allclose(mask[20:30], 0.0)
        np.testing.assert_allclose(mask[30:], 1.0)

    def test_mask_constant_across_features(self):
        masks = GratingMasking(3, 3).masks(60, 5)
        for mask in masks:
            assert np.all(mask == mask[:, :1])

    def test_window_too_small_raises(self):
        with pytest.raises(ValueError):
            GratingMasking(5, 5).masks(6, 2)

    def test_invalid_chunk_counts(self):
        with pytest.raises(ValueError):
            GratingMasking(0, 5)

    def test_roughly_half_masked(self):
        masks = GratingMasking(5, 5).masks(100, 3)
        assert abs(masks[0].mean() - 0.5) < 0.1

    @settings(max_examples=25, deadline=None)
    @given(length=st.integers(min_value=20, max_value=300),
           features=st.integers(min_value=1, max_value=20),
           chunks=st.integers(min_value=1, max_value=8))
    def test_property_complementary_and_covering(self, length, features, chunks):
        strategy = GratingMasking(chunks, chunks)
        if length < strategy.num_chunks:
            length = strategy.num_chunks
        masks = strategy.masks(length, features)
        np.testing.assert_allclose(masks[0] + masks[1], 1.0)
        validate_masks(masks)


class TestRandomMasking:
    def test_complementary_pair(self):
        masks = RandomMasking(0.5, seed=1).masks(80, 6)
        np.testing.assert_allclose(masks[0] + masks[1], np.ones((80, 6)))
        validate_masks(masks)

    def test_mask_ratio_respected(self):
        masks = RandomMasking(0.3, seed=2).masks(2000, 5)
        masked_fraction = 1.0 - masks[0].mean()
        assert abs(masked_fraction - 0.3) < 0.05

    def test_seed_reproducibility(self):
        a = RandomMasking(0.5, seed=3).masks(50, 4)
        b = RandomMasking(0.5, seed=3).masks(50, 4)
        np.testing.assert_allclose(a[0], b[0])

    def test_explicit_rng_overrides_seed(self):
        strategy = RandomMasking(0.5, seed=3)
        a = strategy.masks(50, 4, rng=np.random.default_rng(10))
        b = strategy.masks(50, 4, rng=np.random.default_rng(11))
        assert not np.allclose(a[0], b[0])

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            RandomMasking(0.0)
        with pytest.raises(ValueError):
            RandomMasking(1.0)


class TestValidateMasks:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            validate_masks([])

    def test_non_binary_raises(self):
        with pytest.raises(ValueError):
            validate_masks([np.full((4, 2), 0.5)])

    def test_incomplete_coverage_raises(self):
        with pytest.raises(ValueError):
            validate_masks([np.ones((4, 2))])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            validate_masks([np.zeros((4, 2)), np.zeros((5, 2))])
