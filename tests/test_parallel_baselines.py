"""Universal baseline parallelism: the five newly spec-factored detectors.

Every detector that gained a :class:`~repro.training.ParallelLossSpec` in the
registry/parallelism refactor is held to the engine-wide contract:

* ``_force_parallel_spec`` at ``num_workers=1`` (SpecReducer, no processes)
  is **bit-identical** to the frozen serial closure — parameters, loss
  curves and the random stream all match exactly,
* ``num_workers=2`` (spawned gradient workers) agrees with the serial run up
  to float summation order in the shard-gradient average,
* for the GAN pair the *discriminator* weights must agree too: the
  adversary-gradient reduction steps the parent's discriminator optimizer
  between the two rounds of every batch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    BeatGANDetector,
    GDNDetector,
    InterFusionDetector,
    MADGANDetector,
    OmniAnomalyDetector,
)


def _series(length=140, num_channels=4, seed=0):
    rng = np.random.default_rng(seed)
    base = np.sin(np.arange(length) / 9.0)[:, None] * np.ones((1, num_channels))
    return base + 0.1 * rng.standard_normal((length, num_channels))


# Tiny-but-real configurations: two epochs so optimizer moments matter, and
# enough windows that a batch actually splits across two workers.
CASES = {
    "OmniAnomaly": (OmniAnomalyDetector,
                    dict(window_size=16, hidden_size=8, latent_dim=4, epochs=2,
                         batch_size=8, max_train_windows=24, seed=0)),
    "InterFusion": (InterFusionDetector,
                    dict(window_size=16, metric_latent_dim=4,
                         temporal_latent_dim=4, hidden_dim=8, epochs=2,
                         batch_size=8, max_train_windows=24, seed=0)),
    "MAD-GAN": (MADGANDetector,
                dict(window_size=16, latent_dim=4, hidden_size=8, epochs=2,
                     batch_size=8, max_train_windows=24, seed=0)),
    "BeatGAN": (BeatGANDetector,
                dict(window_size=16, latent_dim=4, hidden_dim=8, epochs=2,
                     batch_size=8, max_train_windows=24, seed=0)),
    "GDN": (GDNDetector,
            dict(history=8, embedding_dim=8, top_k=2, hidden_dim=8, epochs=2,
                 batch_size=8, max_train_samples=24, seed=0)),
}


def _fit(name, *, num_workers=1, force_spec=False):
    cls, kwargs = CASES[name]
    detector = cls(num_workers=num_workers, **kwargs)
    if force_spec:
        detector._force_parallel_spec = True
    return detector.fit(_series())


def _all_parameters(detector):
    parameters = list(detector._trainer_parameters())
    if getattr(type(detector), "_adversary_loss_method", None) is not None:
        parameters += list(detector._adversary_parameters())
    return parameters


@pytest.mark.parametrize("name", sorted(CASES))
class TestSpecBitIdentity:
    """Spec path at one worker vs the frozen serial closure: bitwise equal."""

    def test_parameters_and_losses_bit_identical(self, name):
        serial = _fit(name)
        spec = _fit(name, force_spec=True)
        for a, b in zip(_all_parameters(serial), _all_parameters(spec)):
            np.testing.assert_array_equal(b.data, a.data)
        assert spec.train_losses == serial.train_losses

    def test_rng_stream_position_unchanged(self, name):
        serial = _fit(name)
        spec = _fit(name, force_spec=True)
        assert (spec.rng.standard_normal(4).tolist()
                == serial.rng.standard_normal(4).tolist())


@pytest.mark.parametrize("name", sorted(CASES))
class TestWorkerInvariance:
    """Two spawned workers vs serial: equal up to gradient summation order."""

    def test_two_workers_match_serial(self, name):
        serial = _fit(name)
        parallel = _fit(name, num_workers=2)
        for a, b in zip(_all_parameters(serial), _all_parameters(parallel)):
            np.testing.assert_allclose(b.data, a.data, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(parallel.train_losses, serial.train_losses,
                                   rtol=1e-8, atol=1e-10)

    def test_scores_match_serial(self, name):
        series = _series(seed=3)
        serial = _fit(name)
        parallel = _fit(name, num_workers=2)
        np.testing.assert_allclose(parallel.score(series), serial.score(series),
                                   rtol=1e-6, atol=1e-8)
