"""Data-parallel training engine: sharding, bit-identity, invariance, resume.

The determinism contract under test:

* ``ParallelTrainer(num_workers=1)`` is **bit-identical** to the serial
  ``Trainer`` over the equivalent loss closure (same parameters, losses,
  optimizer moments and random stream),
* for ``num_workers > 1`` the random stream is unchanged (all draws happen
  in the parent before sharding) and parameters agree with the serial run up
  to float summation order in the gradient average,
* checkpoints never record the worker count, so a snapshot resumes
  bit-identically under the same worker count and equivalently under a
  different one.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import ImDiffusionConfig, ImDiffusionDetector
from repro.baselines import LSTMADDetector, MADGANDetector, MSCREDDetector
from repro.core.detector import ImputationLossSpec
from repro.diffusion import GaussianDiffusion, ImputedDiffusion, make_schedule
from repro.models import ImTransformer
from repro.nn import Adam, Linear, SGD, Tensor
from repro.nn import functional as F
from repro.training import (
    Batch,
    Checkpoint,
    MethodLossSpec,
    MultiprocessReducer,
    ParallelTrainer,
    SerialReducer,
    Trainer,
    WindowLoader,
)
from repro.training.parallel import _shard_bounds


def _series(length=200, num_channels=4, seed=0):
    rng = np.random.default_rng(seed)
    base = np.sin(np.arange(length) / 10.0)[:, None] * np.ones((1, num_channels))
    return base + 0.1 * rng.standard_normal((length, num_channels))


def _small_config(**overrides):
    base = dict(window_size=16, num_steps=4, epochs=2, hidden_dim=8,
                num_blocks=1, num_heads=2, batch_size=8,
                num_masked_windows=2, num_unmasked_windows=2,
                max_train_windows=16, train_stride=8, seed=0)
    base.update(overrides)
    return ImDiffusionConfig(**base)


def _imputation_stack(seed=0, num_features=4, window=16):
    rng = np.random.default_rng(seed)
    model = ImTransformer(num_features=num_features, hidden_dim=8,
                          num_blocks=1, num_heads=2, num_policies=3, rng=rng)
    imputer = ImputedDiffusion(model, GaussianDiffusion(make_schedule("quadratic", 4)))
    mask_rng = np.random.default_rng(42)
    masks_arr = (mask_rng.random((3, window, num_features)) < 0.5).astype(np.float64)
    windows = np.random.default_rng(7).standard_normal((16, window, num_features))
    return rng, imputer, masks_arr, windows


# ---------------------------------------------------------------------------
# Sharding arithmetic
# ---------------------------------------------------------------------------
class TestShardBounds:
    def test_even_split(self):
        assert _shard_bounds(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_goes_to_leading_shards(self):
        assert _shard_bounds(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_small_batch_drops_empty_shards(self):
        assert _shard_bounds(2, 4) == [(0, 1), (1, 2)]

    def test_single_shard_covers_everything(self):
        assert _shard_bounds(7, 1) == [(0, 7)]

    def test_bounds_partition_the_samples(self):
        for num, shards in [(13, 5), (3, 8), (64, 7)]:
            bounds = _shard_bounds(num, shards)
            assert bounds[0][0] == 0 and bounds[-1][1] == num
            for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                assert stop == start


# ---------------------------------------------------------------------------
# The loss-spec contract: draw o compute == the serial closure
# ---------------------------------------------------------------------------
class TestImputationLossSpec:
    def test_spec_equals_legacy_closure_bitwise(self):
        rng_a, imputer_a, masks_arr, windows = _imputation_stack()
        rng_b, imputer_b, _, _ = _imputation_stack()
        batch = Batch(arrays=(windows[:8],), indices=np.arange(8))

        policies = rng_a.integers(0, masks_arr.shape[0], size=8)
        legacy = imputer_a.training_loss(batch.data, masks_arr[policies],
                                         policies, rng_a)
        legacy.backward()

        spec = ImputationLossSpec(imputer_b, masks_arr)
        loss = spec.compute(batch, spec.draw(batch, rng_b, None), None)
        loss.backward()

        assert float(legacy.data) == float(loss.data)
        for a, b in zip(imputer_a.model.parameters(), imputer_b.model.parameters()):
            assert np.array_equal(a.grad, b.grad)
        # Both consumed the generator identically.
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_weight_is_the_masked_region_count(self):
        _, imputer, masks_arr, windows = _imputation_stack()
        spec = ImputationLossSpec(imputer, masks_arr)
        batch = Batch(arrays=(windows[:5],), indices=np.arange(5))
        policies = np.array([0, 1, 2, 0, 1])
        payload = (policies, None, None)
        expected = float((1.0 - masks_arr[policies]).sum())
        assert spec.weight(batch, payload) == expected

    def test_sharded_gradient_average_matches_full_batch(self):
        # sum(w_i * g_i) / sum(w_i) over shards == the full-batch gradient.
        rng, imputer, masks_arr, windows = _imputation_stack()
        spec = ImputationLossSpec(imputer, masks_arr)
        batch = Batch(arrays=(windows[:8],), indices=np.arange(8))
        payload = spec.draw(batch, rng, None)

        full = spec.compute(batch, payload, None)
        full.backward()
        full_grads = [p.grad.copy() for p in imputer.model.parameters()]

        totals, total_weight = None, 0.0
        for start, stop in _shard_bounds(8, 3):
            for p in imputer.model.parameters():
                p.grad = None
            shard = Batch(arrays=(windows[start:stop],),
                          indices=np.arange(start, stop))
            shard_payload = tuple(a[start:stop] for a in payload)
            loss = spec.compute(shard, shard_payload, None)
            loss.backward()
            weight = spec.weight(shard, shard_payload)
            grads = [weight * p.grad for p in imputer.model.parameters()]
            totals = grads if totals is None else [t + g for t, g in zip(totals, grads)]
            total_weight += weight

        for full_grad, total in zip(full_grads, totals):
            np.testing.assert_allclose(total / total_weight, full_grad,
                                       rtol=1e-12, atol=1e-14)


# ---------------------------------------------------------------------------
# Bit-identity at num_workers=1
# ---------------------------------------------------------------------------
class TestSingleWorkerBitIdentity:
    def test_parallel_trainer_equals_serial_trainer(self):
        rng_a, imputer_a, masks_arr, windows = _imputation_stack()
        num_policies = masks_arr.shape[0]

        def legacy_loss(batch, state):
            policies = rng_a.integers(0, num_policies, size=batch.data.shape[0])
            return imputer_a.training_loss(batch.data, masks_arr[policies],
                                           policies, rng_a)

        params_a = imputer_a.model.parameters()
        optimizer_a = Adam(params_a, lr=1e-3)
        serial = Trainer(params_a, optimizer_a, legacy_loss, grad_clip=5.0,
                         rng=rng_a)
        serial.fit(WindowLoader(windows, batch_size=8, rng=rng_a), epochs=3)

        rng_b, imputer_b, _, _ = _imputation_stack()
        spec = ImputationLossSpec(imputer_b, masks_arr)
        params_b = imputer_b.model.parameters()
        optimizer_b = Adam(params_b, lr=1e-3)
        parallel = ParallelTrainer(params_b, optimizer_b, spec, num_workers=1,
                                   grad_clip=5.0, rng=rng_b)
        parallel.fit(WindowLoader(windows, batch_size=8, rng=rng_b), epochs=3)

        assert serial.state.epoch_losses == parallel.state.epoch_losses
        for a, b in zip(params_a, params_b):
            assert np.array_equal(a.data, b.data)
        scalars_a, arrays_a = optimizer_a.state_dict()
        scalars_b, arrays_b = optimizer_b.state_dict()
        assert scalars_a == scalars_b
        for name in arrays_a:
            assert np.array_equal(arrays_a[name], arrays_b[name])
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_single_worker_uses_no_subprocess(self):
        _, imputer, masks_arr, _ = _imputation_stack()
        spec = ImputationLossSpec(imputer, masks_arr)
        params = imputer.model.parameters()
        trainer = ParallelTrainer(params, Adam(params, lr=1e-3), spec,
                                  num_workers=1)
        assert not isinstance(trainer.reducer, MultiprocessReducer)

    def test_num_workers_must_be_positive(self):
        _, imputer, masks_arr, _ = _imputation_stack()
        spec = ImputationLossSpec(imputer, masks_arr)
        params = imputer.model.parameters()
        with pytest.raises(ValueError, match="num_workers"):
            ParallelTrainer(params, Adam(params, lr=1e-3), spec, num_workers=0)
        with pytest.raises(ValueError, match="at least 2"):
            MultiprocessReducer(spec, num_workers=1)


# ---------------------------------------------------------------------------
# Worker-count invariance (spawned pools)
# ---------------------------------------------------------------------------
class TestWorkerCountInvariance:
    @staticmethod
    def _fit(num_workers):
        detector = ImDiffusionDetector(_small_config(
            num_workers=num_workers, validation_fraction=0.25))
        detector.fit(_series())
        return detector

    @pytest.mark.parametrize("num_workers", [1, 2, 4])
    def test_params_and_val_history_match_serial(self, num_workers):
        reference = self._fit(1)
        detector = self._fit(num_workers)
        ref_params = [p.data for p in reference.model.parameters()]
        params = [p.data for p in detector.model.parameters()]
        if num_workers == 1:
            for a, b in zip(ref_params, params):
                assert np.array_equal(a, b)
            assert reference.val_losses == detector.val_losses
        else:
            # Same random stream, same trajectory; only the float summation
            # order of the gradient average may differ.
            for a, b in zip(ref_params, params):
                np.testing.assert_allclose(b, a, rtol=1e-9, atol=1e-9)
            np.testing.assert_allclose(detector.val_losses,
                                       reference.val_losses,
                                       rtol=1e-9, atol=1e-12)
            np.testing.assert_allclose(detector.train_losses,
                                       reference.train_losses,
                                       rtol=1e-9, atol=1e-12)

    def test_parallel_run_is_reproducible_for_fixed_worker_count(self):
        first = self._fit(2)
        second = self._fit(2)
        for a, b in zip(first.model.parameters(), second.model.parameters()):
            assert np.array_equal(a.data, b.data)
        assert first.train_losses == second.train_losses
        assert first.val_losses == second.val_losses


# ---------------------------------------------------------------------------
# Resume under parallelism
# ---------------------------------------------------------------------------
class TestResumeUnderParallelism:
    def test_round_trip_is_bit_identical(self, tmp_path):
        series = _series()
        snapshot = str(tmp_path / "trainer.npz")

        uninterrupted = ImDiffusionDetector(_small_config(epochs=3, num_workers=2))
        uninterrupted.fit(series)

        interrupted = ImDiffusionDetector(_small_config(epochs=2, num_workers=2))
        interrupted.fit(series, callbacks=[Checkpoint(snapshot)])

        resumed = ImDiffusionDetector(_small_config(epochs=3, num_workers=2))
        resumed.fit(series, resume_from=snapshot)

        assert resumed.train_losses == uninterrupted.train_losses
        for a, b in zip(uninterrupted.model.parameters(),
                        resumed.model.parameters()):
            assert np.array_equal(a.data, b.data)

    def test_worker_count_may_change_on_resume(self, tmp_path):
        # The snapshot never records num_workers: a run interrupted under two
        # workers continues in-process on the same random stream.
        series = _series()
        snapshot = str(tmp_path / "trainer.npz")

        uninterrupted = ImDiffusionDetector(_small_config(epochs=3, num_workers=1))
        uninterrupted.fit(series)

        interrupted = ImDiffusionDetector(_small_config(epochs=2, num_workers=2))
        interrupted.fit(series, callbacks=[Checkpoint(snapshot)])

        resumed = ImDiffusionDetector(_small_config(epochs=3, num_workers=1))
        resumed.fit(series, resume_from=snapshot)

        for a, b in zip(uninterrupted.model.parameters(),
                        resumed.model.parameters()):
            np.testing.assert_allclose(b.data, a.data, rtol=1e-9, atol=1e-9)


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------
class TestBaselineParallelism:
    def test_lstm_ad_parallel_matches_serial(self):
        series = _series(length=160)
        kwargs = dict(history=8, hidden_size=8, epochs=2, max_train_samples=48,
                      seed=0)
        serial = LSTMADDetector(**kwargs).fit(series)
        parallel = LSTMADDetector(num_workers=2, **kwargs).fit(series)
        for a, b in zip(serial._trainer_parameters(),
                        parallel._trainer_parameters()):
            np.testing.assert_allclose(b.data, a.data, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(parallel.train_losses, serial.train_losses,
                                   rtol=1e-9, atol=1e-12)

    def test_unsupported_baseline_rejects_parallelism_with_its_reason(self):
        from repro.baselines import IsolationForestDetector

        detector = IsolationForestDetector(seed=0)
        detector.num_workers = 2  # IForest takes no num_workers knob
        assert not detector.supports_parallel
        dummy = Tensor(np.zeros(2), requires_grad=True)
        with pytest.raises(ValueError, match="no gradient"):
            detector._run_trainer([dummy], lambda batch, state: None,
                                  (np.zeros((4, 2)),),
                                  epochs=1, batch_size=2, learning_rate=1e-3)

    def test_every_detector_declares_parallel_support(self):
        from repro.baselines import BASELINE_REGISTRY

        for name, cls in BASELINE_REGISTRY.items():
            if name == "IForest":
                assert not cls.supports_parallel
                continue
            assert cls.supports_parallel, name
            assert cls._parallel_loss_method is not None, name

    def test_all_nine_constructors_take_the_knobs(self):
        from repro.baselines import BASELINE_REGISTRY
        import inspect

        trainable = [name for name in BASELINE_REGISTRY if name != "IForest"]
        assert len(trainable) == 9
        for name in trainable:
            signature = inspect.signature(BASELINE_REGISTRY[name])
            assert "num_workers" in signature.parameters, name
            assert "validation_split" in signature.parameters, name

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="num_workers"):
            MSCREDDetector(num_workers=0)
        with pytest.raises(ValueError, match="validation_split"):
            MSCREDDetector(validation_split="head")


# ---------------------------------------------------------------------------
# Method-spec plumbing and pickle transport
# ---------------------------------------------------------------------------
class TestTransport:
    def test_tensor_pickle_drops_the_graph(self):
        x = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        y = (x * x).sum()
        restored = pickle.loads(pickle.dumps(y))
        assert float(restored.data) == float(y.data)
        assert restored._parents == () and restored._backward is None

    def test_module_round_trips_through_pickle(self):
        rng = np.random.default_rng(0)
        layer = Linear(3, 2, rng=rng)
        clone = pickle.loads(pickle.dumps(layer))
        for a, b in zip(layer.parameters(), clone.parameters()):
            assert np.array_equal(a.data, b.data)
        out = clone(Tensor(np.ones((4, 3))))
        assert out.shape == (4, 2)

    @pytest.mark.parametrize("optimizer_cls, kwargs", [
        (Adam, {"lr": 0.01}),
        (SGD, {"lr": 0.01, "momentum": 0.9}),
    ])
    def test_optimizer_pickle_rekeys_slots(self, optimizer_cls, kwargs):
        rng = np.random.default_rng(0)
        layer = Linear(3, 2, rng=rng)
        optimizer = optimizer_cls(layer.parameters(), **kwargs)
        loss = (layer(Tensor(np.ones((4, 3)))) ** 2).sum()
        loss.backward()
        optimizer.step()

        restored = pickle.loads(pickle.dumps(optimizer))
        # The restored slots must be attached to the *restored* parameters:
        # stepping both with identical gradients keeps them in lockstep.
        for source in (optimizer, restored):
            for p in source.parameters:
                p.grad = np.ones_like(p.data)
            source.step()
        for a, b in zip(optimizer.parameters, restored.parameters):
            assert np.array_equal(a.data, b.data)

    def test_method_spec_rebuilds_loss_worker_side(self):
        series = _series(length=160)
        detector = MSCREDDetector(window_size=16, scales=(4, 8, 16), epochs=1,
                                  max_train_windows=16, seed=0).fit(series)
        spec = detector._parallel_spec()
        assert isinstance(spec, MethodLossSpec)

        # Simulate the worker: unpickle the spec, rebuild the parameter list,
        # and compute the loss on the replica — the parent detector is never
        # touched.
        clone_spec = pickle.loads(pickle.dumps(spec))
        params = clone_spec.build()
        originals = detector._trainer_parameters()
        assert len(params) == len(originals)
        assert all(a is not b for a, b in zip(params, originals))

        windows, _ = detector._windows(detector.scaler.transform(series), 16, 8)
        features = detector._features(windows[:4])
        batch = Batch(arrays=(features,), indices=np.arange(features.shape[0]))
        loss = clone_spec.compute(batch, (), None)
        replica_loss = detector._reconstruction_loss(batch, None)
        assert float(loss.data) == float(replica_loss.data)


# ---------------------------------------------------------------------------
# The reducer seam
# ---------------------------------------------------------------------------
class TestReducerSeam:
    def test_default_trainer_uses_serial_reducer(self):
        def loss_fn(batch, state):
            return (Tensor(batch.data, requires_grad=False) * 0.0).sum()

        weight = Tensor(np.ones(2), requires_grad=True)
        trainer = Trainer([weight], Adam([weight], lr=0.1), loss_fn)
        assert isinstance(trainer.reducer, SerialReducer)

    def test_trainer_requires_loss_or_reducer(self):
        weight = Tensor(np.ones(2), requires_grad=True)
        with pytest.raises(ValueError, match="loss_fn or a reducer"):
            Trainer([weight], Adam([weight], lr=0.1), loss_fn=None)

    def test_worker_error_propagates_with_traceback(self):
        _, imputer, masks_arr, windows = _imputation_stack()
        spec = ImputationLossSpec(imputer, np.ones_like(masks_arr))  # no masked region
        params = imputer.model.parameters()
        trainer = ParallelTrainer(params, Adam(params, lr=1e-3), spec,
                                  num_workers=2,
                                  rng=np.random.default_rng(0))
        with pytest.raises(RuntimeError, match="gradient worker failed"):
            trainer.fit(WindowLoader(windows, batch_size=8,
                                     rng=trainer.rng), epochs=1)
