"""Tests for the production deployment harness (legacy detector + online evaluation)."""

import numpy as np
import pytest

from repro.data import MicroserviceLatencySimulator, ProductionConfig
from repro.production import (
    LegacyThresholdDetector,
    OnlineEvaluation,
    compare_with_legacy,
    run_online_evaluation,
)


@pytest.fixture(scope="module")
def trace():
    sim = MicroserviceLatencySimulator(ProductionConfig(num_services=6, train_days=2,
                                                        test_days=2, seed=3))
    return sim.generate()


class TestLegacyDetector:
    def test_fit_predict_shapes(self, trace):
        result = LegacyThresholdDetector(seed=0).fit_predict(trace.train, trace.test)
        assert result.labels.shape == trace.test_labels.shape
        assert set(np.unique(result.labels)).issubset({0, 1})

    def test_detects_large_latency_regressions(self, trace):
        detector = LegacyThresholdDetector(sigma_threshold=3.0, seed=0).fit(trace.train)
        scores = detector.score(trace.test)
        anomalous = scores[trace.test_labels == 1].mean()
        normal = scores[trace.test_labels == 0].mean()
        assert anomalous > normal

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            LegacyThresholdDetector(smoothing=0.0)

    def test_sigma_threshold_controls_alarm_rate(self, trace):
        lenient = LegacyThresholdDetector(sigma_threshold=2.0, seed=0).fit_predict(
            trace.train, trace.test)
        strict = LegacyThresholdDetector(sigma_threshold=6.0, seed=0).fit_predict(
            trace.train, trace.test)
        assert strict.labels.sum() <= lenient.labels.sum()


class TestOnlineEvaluation:
    def test_online_run_produces_metrics(self, trace):
        evaluation = run_online_evaluation(LegacyThresholdDetector(seed=0), trace,
                                           rescore_every=32)
        assert isinstance(evaluation, OnlineEvaluation)
        assert evaluation.labels.shape == trace.test_labels.shape
        assert evaluation.points_per_second > 0
        assert 0.0 <= evaluation.metrics.f1 <= 1.0

    def test_rescore_block_size_does_not_change_shapes(self, trace):
        small = run_online_evaluation(LegacyThresholdDetector(seed=0), trace, rescore_every=8)
        large = run_online_evaluation(LegacyThresholdDetector(seed=0), trace, rescore_every=128)
        assert small.labels.shape == large.labels.shape

    def test_compare_with_legacy_keys(self, trace):
        legacy = run_online_evaluation(LegacyThresholdDetector(sigma_threshold=6.0, seed=0),
                                       trace, rescore_every=64)
        better = run_online_evaluation(LegacyThresholdDetector(sigma_threshold=3.0, seed=0),
                                       trace, rescore_every=64)
        comparison = compare_with_legacy(better, legacy)
        assert set(comparison) == {
            "precision_improvement", "recall_improvement", "f1_improvement",
            "r_auc_pr_improvement", "add_reduction", "inference_points_per_second",
        }
        assert comparison["inference_points_per_second"] > 0

    def test_identical_detectors_have_zero_improvement(self, trace):
        a = run_online_evaluation(LegacyThresholdDetector(seed=0), trace, rescore_every=64)
        b = run_online_evaluation(LegacyThresholdDetector(seed=0), trace, rescore_every=64)
        comparison = compare_with_legacy(a, b)
        assert comparison["f1_improvement"] == pytest.approx(0.0, abs=1e-9)
