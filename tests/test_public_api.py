"""Every re-exported public name carries a real docstring.

``repro.__all__`` is the supported public API (see the package docstring);
docs/architecture.md links into it.  This test walks the export list and
fails on any exported object — or any public method/property of an exported
class — whose docstring is missing or too short to be useful.
"""

import inspect

import repro

MIN_LENGTH = 10  # characters; rejects placeholder one-worders


def _public_members(cls):
    for name, member in inspect.getmembers(cls):
        if name.startswith("_"):
            continue
        if isinstance(inspect.getattr_static(cls, name, None), property):
            yield name, member
        elif inspect.isfunction(member) or inspect.ismethod(member):
            if member.__qualname__.startswith(cls.__name__ + "."):
                yield name, member


def _missing():
    problems = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if isinstance(obj, str):  # __version__
            continue
        doc = inspect.getdoc(obj)
        if not doc or len(doc) < MIN_LENGTH:
            problems.append(name)
        if inspect.isclass(obj):
            for member_name, member in _public_members(obj):
                member_doc = inspect.getdoc(member)
                if not member_doc or len(member_doc) < MIN_LENGTH:
                    problems.append(f"{name}.{member_name}")
    return problems


def test_package_docstring_mentions_public_api():
    assert repro.__doc__
    assert "public API" in repro.__doc__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ names missing {name!r}"


def test_public_api_is_documented():
    problems = _missing()
    assert not problems, (
        "public API members missing docstrings (add one or underscore-prefix "
        f"the member): {sorted(problems)}")
