"""Sampler zoo: registry, spacing schedules, cached transition tables and
cross-sampler equivalences.

The equivalence discipline follows the HuggingFace ``diffusers`` scheduler
suite (config save/load round-trips per sampler knob, pairwise bitwise
identities between samplers that must coincide) and the ``jet-ddpm``
transition-probability identity tests (closed-form checks of every cached
coefficient against the schedule).  The worker-count section extends the
inference-engine identity gates to every new sampler.
"""

import copy
import pickle
from dataclasses import asdict

import numpy as np
import pytest

from repro import ImDiffusionConfig, ImDiffusionDetector
from repro.diffusion import (
    DDIMSampler,
    FullReverseSampler,
    GaussianDiffusion,
    ImputedDiffusion,
    PNDMSampler,
    SPACINGS,
    StridedReverseSampler,
    make_sampler,
    make_schedule,
    quadratic_beta_schedule,
    register_sampler,
    sampler_help,
    sampler_names,
    trajectory_steps,
)
from repro.diffusion.samplers import SAMPLER_REGISTRY
from repro.masking import GratingMasking
from repro.models import ImTransformer
from repro.training import antithetic_loss, crn_validation_rng


def _tiny_imputer(num_steps=8, seed=0):
    rng = np.random.default_rng(seed)
    model = ImTransformer(num_features=4, hidden_dim=8, num_blocks=1,
                          num_heads=2, rng=rng)
    diffusion = GaussianDiffusion(quadratic_beta_schedule(num_steps))
    imputer = ImputedDiffusion(model, diffusion)
    masks = GratingMasking(2, 2).masks(20, 4)
    windows = np.random.default_rng(seed + 1).normal(size=(3, 20, 4))
    mask_batch = np.stack([masks[0], masks[1], masks[0]])
    policies = np.array([0, 1, 0])
    return imputer, windows, mask_batch, policies


def _fitted_detector(**overrides):
    rng = np.random.default_rng(0)
    knobs = dict(window_size=16, num_steps=8, epochs=1, hidden_dim=8,
                 num_blocks=1, num_heads=2, max_train_windows=8,
                 num_masked_windows=2, num_unmasked_windows=2, batch_size=16,
                 seed=0)
    knobs.update(overrides)
    config = ImDiffusionConfig(**knobs)
    series = (np.sin(np.linspace(0, 12 * np.pi, 240))[:, None]
              * np.ones((1, 3)) + 0.05 * rng.standard_normal((240, 3)))
    return ImDiffusionDetector(config).fit(series), series


# ---------------------------------------------------------------------------
# Trajectories: exact counts, spacings, the duplicate-collapse fix
# ---------------------------------------------------------------------------
class TestTrajectorySpacings:
    @pytest.mark.parametrize("spacing", SPACINGS)
    @pytest.mark.parametrize("num_steps", [8, 20, 50])
    def test_requested_count_is_honoured_exactly(self, spacing, num_steps):
        for n in range(2, num_steps + 1):
            traj = trajectory_steps(num_steps, n, spacing)
            assert len(traj) == n
            assert traj[0] == num_steps and traj[-1] == 1
            assert all(a > b for a, b in zip(traj, traj[1:]))

    @pytest.mark.parametrize("spacing", SPACINGS)
    def test_boundary_counts_near_num_steps(self, spacing):
        # n == T must walk every step; n == T - 1 must drop exactly one.
        assert trajectory_steps(20, 20, spacing) == list(range(20, 0, -1))
        assert len(trajectory_steps(20, 19, spacing)) == 19
        assert len(trajectory_steps(20, 21, spacing)) == 20  # clamps

    def test_rounding_would_collapse_nonuniform_spacings(self):
        # The regression the repair fixes: naive round-and-dedup loses steps.
        positions = 1.0 + 49.0 * np.linspace(0.0, 1.0, 20) ** 2
        naive = sorted(set(int(round(p)) for p in positions))
        assert len(naive) < 20  # quadratic spacing genuinely duplicates
        assert len(trajectory_steps(50, 20, "quadratic")) == 20

    def test_uniform_matches_the_legacy_rounding(self):
        for num_steps in (8, 20, 50):
            for n in range(2, num_steps + 1):
                legacy = sorted({int(round(s))
                                 for s in np.linspace(1, num_steps, n)},
                                reverse=True)
                if legacy[-1] != 1:
                    legacy.append(1)
                assert trajectory_steps(num_steps, n, "uniform") == legacy

    def test_nonuniform_spacings_concentrate_near_t1(self):
        uniform = trajectory_steps(50, 10, "uniform")
        quadratic = trajectory_steps(50, 10, "quadratic")
        karras = trajectory_steps(50, 10, "karras")
        assert sum(quadratic) < sum(uniform)
        assert sum(karras) < sum(quadratic)

    def test_spacing_validation(self):
        with pytest.raises(ValueError, match="spacing"):
            trajectory_steps(20, 5, "cubic")
        with pytest.raises(ValueError, match="spacing"):
            StridedReverseSampler(num_inference_steps=5, spacing="cubic")
        with pytest.raises(ValueError, match="literal steps"):
            StridedReverseSampler(stride=2, spacing="quadratic")

    def test_sampler_trajectories_follow_spacing(self):
        for cls in (StridedReverseSampler, DDIMSampler, PNDMSampler):
            sampler = cls(num_inference_steps=6, spacing="karras")
            assert sampler.trajectory(20) == trajectory_steps(20, 6, "karras")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
class TestSamplerRegistry:
    def test_zoo_entries_registered(self):
        names = sampler_names()
        assert set(names) >= {"full", "strided", "ddim", "pndm"}
        for name in ("strided", "ddim", "pndm"):
            assert make_sampler(name, num_inference_steps=4).name == name
        assert make_sampler("full").name == "full"

    def test_unknown_sampler_error_lists_registry(self):
        with pytest.raises(KeyError, match="pndm"):
            make_sampler("warp")

    def test_help_mentions_every_sampler(self):
        text = sampler_help()
        for name in sampler_names():
            assert f"'{name}'" in text

    def test_unsupported_knob_is_rejected(self):
        with pytest.raises(ValueError, match="does not take"):
            make_sampler("strided", num_inference_steps=4, eta=0.5)
        with pytest.raises(ValueError, match="does not take"):
            make_sampler("full", num_inference_steps=4)

    def test_subsequence_samplers_need_a_step_budget(self):
        for name in ("strided", "ddim", "pndm"):
            with pytest.raises(ValueError, match="num_inference_steps"):
                make_sampler(name)

    def test_registration_extends_registry_config_and_factory(self):
        @register_sampler("turbo", "test-only sampler")
        class Turbo(StridedReverseSampler):
            name = "turbo"

        try:
            assert "turbo" in sampler_names()
            assert make_sampler("turbo", num_inference_steps=3).name == "turbo"
            # Config validation resolves against the live registry.
            config = ImDiffusionConfig(num_steps=8, sampler="turbo")
            assert config.build_sampler().name == "turbo"
        finally:
            del SAMPLER_REGISTRY["turbo"]

    def test_ddim_eta_validation(self):
        with pytest.raises(ValueError, match="eta"):
            DDIMSampler(num_inference_steps=4, eta=1.5)
        with pytest.raises(ValueError, match="eta"):
            DDIMSampler(num_inference_steps=4, eta=-0.1)


# ---------------------------------------------------------------------------
# Cached transition tables: jet-ddpm-style coefficient identities
# ---------------------------------------------------------------------------
class TestTransitionTables:
    def setup_method(self):
        self.schedule = make_schedule("quadratic", 20, beta_end=0.25)
        self.diffusion = GaussianDiffusion(self.schedule)

    def _table(self, n=6, eta=0.0, spacing="uniform"):
        trajectory = trajectory_steps(20, n, spacing)
        return self.diffusion.transition_table(trajectory, eta=eta)

    def test_x0_and_ddpm_coefficients_match_schedule(self):
        table = self._table()
        for i, t in enumerate(table.steps):
            alpha_bar = self.schedule.alpha_bars[t - 1]
            assert table.sqrt_alpha_bar[i] == np.sqrt(alpha_bar)
            assert table.sqrt_one_minus_alpha_bar[i] == np.sqrt(1.0 - alpha_bar)
            assert table.sqrt_alpha[i] == np.sqrt(self.schedule.alphas[t - 1])
            # p0/p1 of the eps-parameterised posterior mean (jet-ddpm's
            # calc_imu_eps_parts): mean = (x - beta/sqrt(1-abar) eps)/sqrt(a).
            assert table.ddpm_eps_coef[i] == \
                self.schedule.betas[t - 1] / np.sqrt(1.0 - alpha_bar)

    def test_ddpm_sigma_squares_to_posterior_variance(self):
        table = self._table()
        for i, t in enumerate(table.steps):
            assert table.ddpm_sigma[i] == \
                np.sqrt(self.schedule.posterior_variance(int(t)))

    def test_eta0_jump_coefficients(self):
        table = self._table(eta=0.0)
        for i, t_prev in enumerate(table.prev_steps[:-1]):
            alpha_bar_prev = self.schedule.alpha_bars[t_prev - 1]
            assert table.jump_x0_coef[i] == np.sqrt(alpha_bar_prev)
            assert table.jump_eps_coef[i] == np.sqrt(1.0 - alpha_bar_prev)
            assert table.jump_sigma[i] == 0.0

    def test_terminal_entry_lands_on_clean_data(self):
        table = self._table(eta=0.7)
        assert table.prev_steps[-1] == 0
        assert table.jump_x0_coef[-1] == 1.0
        assert table.jump_eps_coef[-1] == 0.0
        assert table.jump_sigma[-1] == 0.0

    def test_eta_jump_variance_identity(self):
        # sigma^2 + jump_eps^2 == 1 - abar_prev: the DDIM family preserves
        # the marginal q(x_prev | x0) for every eta.
        table = self._table(eta=0.7)
        for i, t_prev in enumerate(table.prev_steps[:-1]):
            alpha_bar_prev = self.schedule.alpha_bars[t_prev - 1]
            np.testing.assert_allclose(
                table.jump_sigma[i] ** 2 + table.jump_eps_coef[i] ** 2,
                1.0 - alpha_bar_prev, rtol=1e-12)

    def test_eta1_adjacent_jumps_recover_ddpm_variance(self):
        trajectory = list(range(20, 0, -1))
        table = self.diffusion.transition_table(trajectory, eta=1.0)
        for i, (t, t_prev) in enumerate(zip(table.steps, table.prev_steps)):
            if t_prev == t - 1 and t_prev >= 1:
                np.testing.assert_allclose(
                    table.jump_sigma[i] ** 2,
                    self.schedule.posterior_variance(int(t)), rtol=1e-10)

    def test_tables_are_cached_and_keyed(self):
        trajectory = trajectory_steps(20, 6)
        first = self.diffusion.transition_table(trajectory)
        assert self.diffusion.transition_table(tuple(trajectory)) is first
        assert self.diffusion.transition_table(trajectory, eta=0.5) is not first

    def test_cache_invalidates_when_schedule_is_replaced(self):
        trajectory = trajectory_steps(20, 6)
        first = self.diffusion.transition_table(trajectory)
        self.diffusion.schedule = make_schedule("linear", 20)
        second = self.diffusion.transition_table(trajectory)
        assert second is not first
        assert not np.array_equal(second.sqrt_alpha_bar, first.sqrt_alpha_bar)

    def test_pickle_drops_the_cache_but_rebuilds_identically(self):
        trajectory = trajectory_steps(20, 6)
        table = self.diffusion.transition_table(trajectory, eta=0.3)
        clone = pickle.loads(pickle.dumps(self.diffusion))
        assert clone._table_cache == {}
        rebuilt = clone.transition_table(trajectory, eta=0.3)
        for column in ("sqrt_alpha_bar", "sqrt_one_minus_alpha_bar",
                       "sqrt_alpha", "ddpm_eps_coef", "ddpm_sigma",
                       "jump_x0_coef", "jump_eps_coef", "jump_sigma"):
            np.testing.assert_array_equal(getattr(rebuilt, column),
                                          getattr(table, column))


# ---------------------------------------------------------------------------
# Cross-sampler equivalences (diffusers-style)
# ---------------------------------------------------------------------------
class TestCrossSamplerEquivalence:
    @pytest.mark.parametrize("collect", ["sample", "x0"])
    @pytest.mark.parametrize("deterministic", [False, True])
    def test_eta0_ddim_is_bitwise_identical_to_strided(self, collect,
                                                       deterministic):
        imputer, windows, masks, policies = _tiny_imputer()
        rng_a, rng_b = np.random.default_rng(11), np.random.default_rng(11)
        strided = imputer.impute(windows, masks, policies, rng_a,
                                 collect=collect, deterministic=deterministic,
                                 sampler=StridedReverseSampler(num_inference_steps=4))
        ddim = imputer.impute(windows, masks, policies, rng_b,
                              collect=collect, deterministic=deterministic,
                              sampler=DDIMSampler(num_inference_steps=4, eta=0.0))
        np.testing.assert_array_equal(ddim.final, strided.final)
        for (_, expected), (_, actual) in zip(strided.intermediate,
                                              ddim.intermediate):
            np.testing.assert_array_equal(actual, expected)
        # Identical random-stream consumption too.
        assert (rng_a.bit_generator.state == rng_b.bit_generator.state)

    def test_adjacent_only_ddim_is_bitwise_identical_to_full(self):
        imputer, windows, masks, policies = _tiny_imputer(num_steps=8)
        full = imputer.impute(windows, masks, policies,
                              np.random.default_rng(3),
                              sampler=FullReverseSampler())
        for sampler in (DDIMSampler(stride=1), DDIMSampler(num_inference_steps=8),
                        PNDMSampler(stride=1)):
            result = imputer.impute(windows, masks, policies,
                                    np.random.default_rng(3), sampler=sampler)
            if isinstance(sampler, PNDMSampler):
                # PNDM replaces the stochastic DDPM transition outright; it
                # must walk the same trajectory but is free to differ.
                assert result.steps() == full.steps()
                continue
            np.testing.assert_array_equal(result.final, full.final)

    @pytest.mark.parametrize("eta", [0.3, 1.0])
    def test_stochastic_ddim_injected_noise_is_bit_identical(self, eta):
        imputer, windows, masks, policies = _tiny_imputer()
        sampler = DDIMSampler(num_inference_steps=4, eta=eta)
        draw_rng = np.random.default_rng(21)
        noise = imputer.draw_impute_noise(windows, draw_rng, sampler=sampler)
        # eta > 0 jumps must carry a transition draw (only t == 1 is free).
        trajectory = sampler.trajectory(imputer.diffusion.num_steps)
        for i, t in enumerate(trajectory):
            t_prev = trajectory[i + 1] if i + 1 < len(trajectory) else 0
            assert (noise.transition[i] is not None) == (t_prev >= 1)

        internal_rng = np.random.default_rng(21)
        internal = imputer.impute(windows, masks, policies, internal_rng,
                                  sampler=sampler)
        injected = imputer.impute(windows, masks, policies, rng=None,
                                  sampler=sampler, noise=noise)
        np.testing.assert_array_equal(injected.final, internal.final)
        assert (draw_rng.bit_generator.state
                == internal_rng.bit_generator.state)

    def test_stochastic_ddim_actually_varies_across_seeds(self):
        imputer, windows, masks, policies = _tiny_imputer()
        deterministic = DDIMSampler(num_inference_steps=4, eta=0.0)
        stochastic = DDIMSampler(num_inference_steps=4, eta=1.0)
        base = imputer.impute(windows, masks, policies,
                              np.random.default_rng(5), sampler=deterministic)
        noisy = imputer.impute(windows, masks, policies,
                               np.random.default_rng(5), sampler=stochastic)
        assert not np.array_equal(base.final, noisy.final)

    def test_pndm_consumes_no_transition_randomness(self):
        imputer, windows, masks, policies = _tiny_imputer()
        sampler = PNDMSampler(num_inference_steps=4)
        noise = imputer.draw_impute_noise(windows, np.random.default_rng(2),
                                          sampler=sampler)
        assert all(draw is None for draw in noise.transition)
        # Two passes from the same seed are identical: the eps history is
        # per-call state, never retained on the sampler object.
        first = imputer.impute(windows, masks, policies,
                               np.random.default_rng(6), sampler=sampler)
        second = imputer.impute(windows, masks, policies,
                                np.random.default_rng(6), sampler=sampler)
        np.testing.assert_array_equal(second.final, first.final)

    def test_pndm_second_step_uses_the_eps_history(self):
        imputer, windows, masks, policies = _tiny_imputer()
        pndm = imputer.impute(windows, masks, policies,
                              np.random.default_rng(6),
                              sampler=PNDMSampler(num_inference_steps=4))
        ddim = imputer.impute(windows, masks, policies,
                              np.random.default_rng(6),
                              sampler=DDIMSampler(num_inference_steps=4))
        # First visited step has no history: identical estimate.
        np.testing.assert_array_equal(pndm.intermediate[0][1],
                                      ddim.intermediate[0][1])
        # From the second step on the Adams-Bashforth combination kicks in.
        assert not np.array_equal(pndm.intermediate[1][1],
                                  ddim.intermediate[1][1])

    def test_sampler_step_without_table_matches_table_path(self):
        imputer, windows, masks, policies = _tiny_imputer()
        diffusion = imputer.diffusion
        rng = np.random.default_rng(13)
        x_t = rng.standard_normal((3, 4, 20))
        eps = rng.standard_normal((3, 4, 20))
        for sampler in (StridedReverseSampler(num_inference_steps=4),
                        DDIMSampler(num_inference_steps=4, eta=0.6),
                        PNDMSampler(num_inference_steps=4),
                        FullReverseSampler()):
            table = sampler.transition_table(diffusion)
            for i, (t, t_prev) in enumerate(zip(table.steps, table.prev_steps)):
                z = np.random.default_rng(100 + t).standard_normal(x_t.shape)
                direct = sampler.step(diffusion, x_t, t, t_prev, eps,
                                      noise=z, state=sampler.init_state())
                tabled = sampler.step(diffusion, x_t, t, t_prev, eps,
                                      noise=z, table=table, index=i,
                                      state=sampler.init_state())
                np.testing.assert_array_equal(tabled, direct)


# ---------------------------------------------------------------------------
# Config round-trips and knob validation (diffusers check_over_configs)
# ---------------------------------------------------------------------------
ZOO_CONFIGS = [
    {"sampler": "full"},
    {"sampler": "strided", "num_inference_steps": 4},
    {"sampler": "strided", "num_inference_steps": 4, "stride_spacing": "quadratic"},
    {"sampler": "ddim", "num_inference_steps": 4},
    {"sampler": "ddim", "num_inference_steps": 4, "ddim_eta": 0.5},
    {"sampler": "ddim", "num_inference_steps": 4, "stride_spacing": "karras",
     "ddim_eta": 1.0},
    {"sampler": "pndm", "num_inference_steps": 4},
    {"sampler": "pndm", "num_inference_steps": 4, "stride_spacing": "quadratic"},
]


class TestConfigRoundTrip:
    @pytest.mark.parametrize("knobs", ZOO_CONFIGS,
                             ids=[str(sorted(k.items())) for k in ZOO_CONFIGS])
    def test_asdict_round_trip_preserves_sampler_and_trajectory(self, knobs):
        config = ImDiffusionConfig(num_steps=8, **knobs)
        restored = ImDiffusionConfig(**asdict(config))
        assert restored == config
        original_sampler = config.build_sampler()
        restored_sampler = restored.build_sampler()
        assert restored_sampler.name == original_sampler.name
        assert restored_sampler.eta == original_sampler.eta
        assert (restored_sampler.trajectory(config.num_steps)
                == original_sampler.trajectory(config.num_steps))

    def test_explicit_zoo_sampler_not_clobbered_by_step_count(self):
        for name in ("ddim", "pndm"):
            config = ImDiffusionConfig(num_steps=8, sampler=name,
                                       num_inference_steps=4)
            assert config.sampler == name
        # The historical implication is preserved for the default.
        assert ImDiffusionConfig(num_steps=8,
                                 num_inference_steps=4).sampler == "strided"

    def test_knob_validation(self):
        with pytest.raises(ValueError, match="ddim_eta"):
            ImDiffusionConfig(ddim_eta=1.5)
        with pytest.raises(ValueError, match="ddim_eta"):
            ImDiffusionConfig(sampler="strided", num_inference_steps=4,
                              num_steps=8, ddim_eta=0.5)
        with pytest.raises(ValueError, match="stride_spacing"):
            ImDiffusionConfig(stride_spacing="cubic")
        with pytest.raises(ValueError, match="subsequence"):
            ImDiffusionConfig(stride_spacing="quadratic")  # full sampler

    def test_zoo_defaults_to_quarter_trajectory(self):
        for name in ("ddim", "pndm"):
            config = ImDiffusionConfig(num_steps=20, sampler=name)
            assert config.inference_steps == 5

    def test_checkpoint_round_trip_preserves_zoo_knobs(self):
        detector, series = _fitted_detector(
            sampler="ddim", num_inference_steps=3, ddim_eta=0.5,
            stride_spacing="quadratic")
        arrays, metadata = detector.to_checkpoint()
        restored = ImDiffusionDetector.from_checkpoint(arrays, metadata)
        assert restored.config.sampler == "ddim"
        assert restored.config.ddim_eta == 0.5
        assert restored.config.stride_spacing == "quadratic"
        np.testing.assert_array_equal(
            restored.score(series)[3], detector.score(series)[3])


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------
class TestCLISamplerZoo:
    def test_sampler_choices_follow_the_registry(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["detect", "--sampler", "ddim", "--ddim-eta", "0.5",
             "--num-inference-steps", "4", "--stride-spacing", "karras"])
        assert args.sampler == "ddim"
        assert args.ddim_eta == 0.5
        assert args.stride_spacing == "karras"

    def test_help_lists_zoo_samplers(self):
        from repro.cli import build_parser

        detect = next(
            action for action in build_parser()._subparsers._group_actions[0]
            ._choices_actions if action.dest == "detect")
        # The registered names appear in the rendered subparser help.
        parser = build_parser()
        subparsers = next(a for a in parser._actions
                          if isinstance(a, type(parser._actions[-1]))
                          and hasattr(a, "choices") and "detect" in (a.choices or {}))
        help_text = subparsers.choices["detect"].format_help()
        for name in sampler_names():
            assert name in help_text

    def test_engine_overrides_carry_zoo_knobs(self):
        import argparse

        from repro.cli import _engine_overrides

        args = argparse.Namespace(sampler="ddim", num_inference_steps=4,
                                  ddim_eta=0.5, stride_spacing="quadratic")
        overrides = _engine_overrides(args)
        assert overrides == {"sampler": "ddim", "num_inference_steps": 4,
                             "ddim_eta": 0.5, "stride_spacing": "quadratic"}

    def test_full_override_clears_zoo_knobs(self):
        import argparse

        from repro.cli import _engine_overrides

        args = argparse.Namespace(sampler="full", num_inference_steps=None,
                                  ddim_eta=None, stride_spacing=None)
        overrides = _engine_overrides(args)
        assert overrides == {"sampler": "full", "num_inference_steps": None,
                             "ddim_eta": 0.0, "stride_spacing": "uniform"}


# ---------------------------------------------------------------------------
# Worker-count bit-identity for every new sampler
# ---------------------------------------------------------------------------
WORKER_SAMPLER_KNOBS = [
    {"sampler": "ddim", "num_inference_steps": 4, "ddim_eta": 0.5},
    {"sampler": "pndm", "num_inference_steps": 4},
    {"sampler": "strided", "num_inference_steps": 4,
     "stride_spacing": "quadratic"},
]


@pytest.fixture(scope="module")
def zoo_fitted():
    return _fitted_detector()


class TestWorkerCountBitIdentity:
    @pytest.mark.parametrize("knobs", WORKER_SAMPLER_KNOBS,
                             ids=[k["sampler"] for k in WORKER_SAMPLER_KNOBS])
    def test_scores_labels_and_rng_invariant_across_worker_counts(
            self, zoo_fitted, knobs):
        fitted, series = zoo_fitted
        serial_det = copy.deepcopy(fitted)
        serial_det.config = serial_det.config.with_overrides(**knobs)
        serial = serial_det.predict(series)
        for workers in (1, 2, 4):
            pooled_det = copy.deepcopy(fitted)
            pooled_det.config = pooled_det.config.with_overrides(**knobs)
            pooled = pooled_det.predict(series, score_workers=workers)
            assert np.array_equal(serial.scores, pooled.scores), workers
            assert np.array_equal(serial.labels, pooled.labels), workers
            for progress in serial.step_errors:
                assert np.array_equal(serial.step_errors[progress],
                                      pooled.step_errors[progress]), workers
            assert (serial_det._rng.bit_generator.state
                    == pooled_det._rng.bit_generator.state), workers


# ---------------------------------------------------------------------------
# Variance-reduced validation: CRN + antithetic variates
# ---------------------------------------------------------------------------
class TestAntitheticValidation:
    def test_crn_rng_is_deterministic_and_offset(self):
        a = crn_validation_rng(0).standard_normal(4)
        b = crn_validation_rng(0).standard_normal(4)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, np.random.default_rng(0).standard_normal(4))

    def test_antithetic_loss_averages_the_pair(self):
        calls = []

        def loss_fn(steps, noise):
            calls.append(noise.copy())
            return float(noise.sum() ** 2 + 1.0)

        steps = np.array([3, 5])
        noise = np.array([1.0, 2.0])
        value = antithetic_loss(loss_fn, steps, noise)
        assert value == 0.5 * (loss_fn(steps, noise) + loss_fn(steps, -noise))
        np.testing.assert_array_equal(calls[0], noise)
        np.testing.assert_array_equal(calls[1], -noise)

    def test_antithetic_validation_trains_and_records_losses(self):
        detector, _ = _fitted_detector(validation_fraction=0.25, epochs=2,
                                       validation_antithetic=True)
        assert len(detector.val_losses) == 2
        assert all(np.isfinite(v) for v in detector.val_losses)

    def test_flag_off_and_on_share_the_training_stream(self):
        plain, _ = _fitted_detector(validation_fraction=0.25, epochs=2)
        antithetic, _ = _fitted_detector(validation_fraction=0.25, epochs=2,
                                         validation_antithetic=True)
        # Validation uses a dedicated CRN generator either way, so the
        # gradient path is bit-identical...
        assert antithetic.train_losses == plain.train_losses
        # ...while the monitored estimate itself changes (pair-averaged).
        assert antithetic.val_losses != plain.val_losses

    def test_config_round_trips_the_flag(self):
        config = ImDiffusionConfig(validation_fraction=0.25,
                                   validation_antithetic=True)
        assert ImDiffusionConfig(**asdict(config)).validation_antithetic
