"""Inference engine: array timesteps, reverse samplers and strided scoring.

The stride-1 regression test embeds a frozen copy of the pre-engine reverse
loop (scalar ``t``, hard-coded ``for t in range(T, 0, -1)``, per-step
``p_sample``) and asserts the refactored engine reproduces it bit for bit,
for both the full sampler and the strided sampler at stride 1.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ImDiffusionConfig, ImDiffusionDetector
from repro.diffusion import (
    FullReverseSampler,
    GaussianDiffusion,
    ImputedDiffusion,
    StridedReverseSampler,
    make_sampler,
    linear_beta_schedule,
    quadratic_beta_schedule,
)
from repro.masking import GratingMasking
from repro.models import ImTransformer


# ---------------------------------------------------------------------------
# Array-valued timesteps against the scalar reference
# ---------------------------------------------------------------------------
class TestArrayTimesteps:
    def setup_method(self):
        self.diffusion = GaussianDiffusion(linear_beta_schedule(30))
        self.rng = np.random.default_rng(0)

    def test_q_sample_gather_matches_scalar_calls(self):
        x0 = self.rng.normal(size=(6, 3, 4))
        t = np.array([1, 5, 12, 30, 2, 17])
        noise = self.rng.standard_normal(x0.shape)
        x_t, _ = self.diffusion.q_sample(x0, t, noise=noise)
        for i, step in enumerate(t):
            x_i, _ = self.diffusion.q_sample(x0[i], int(step), noise=noise[i])
            np.testing.assert_array_equal(x_t[i], x_i)

    def test_predict_x0_gather_matches_scalar_calls(self):
        x0 = self.rng.normal(size=(5, 2, 3))
        t = np.array([3, 9, 1, 30, 20])
        x_t, noise = self.diffusion.q_sample(x0, t, rng=self.rng)
        recovered = self.diffusion.predict_x0_from_eps(x_t, t, noise)
        np.testing.assert_allclose(recovered, x0, atol=1e-10)
        for i, step in enumerate(t):
            np.testing.assert_array_equal(
                recovered[i],
                self.diffusion.predict_x0_from_eps(x_t[i], int(step), noise[i]))

    def test_p_mean_variance_gather_matches_scalar_calls(self):
        x_t = self.rng.normal(size=(4, 3, 5))
        eps = self.rng.normal(size=(4, 3, 5))
        t = np.array([1, 2, 15, 30])
        mean, variance = self.diffusion.p_mean_variance(x_t, t, eps)
        assert variance.shape == (4, 1, 1)
        for i, step in enumerate(t):
            mean_i, var_i = self.diffusion.p_mean_variance(x_t[i], int(step), eps[i])
            np.testing.assert_array_equal(mean[i], mean_i)
            assert variance[i, 0, 0] == pytest.approx(var_i, abs=0.0)

    def test_posterior_variance_vectorised_matches_scalar(self):
        t = np.arange(1, 31)
        variances = self.diffusion.schedule.posterior_variance(t)
        for i, step in enumerate(t):
            assert variances[i] == self.diffusion.schedule.posterior_variance(int(step))

    def test_p_sample_keeps_t1_rows_noise_free(self):
        x_t = self.rng.normal(size=(3, 2, 2))
        eps = self.rng.normal(size=(3, 2, 2))
        t = np.array([1, 10, 1])
        out = self.diffusion.p_sample(x_t, t, eps, rng=np.random.default_rng(1))
        mean = self.diffusion.posterior_mean_from_eps(x_t, t, eps)
        np.testing.assert_array_equal(out[0], mean[0])
        np.testing.assert_array_equal(out[2], mean[2])
        assert not np.array_equal(out[1], mean[1])

    def test_p_sample_all_t1_draws_no_rng(self):
        x_t = self.rng.normal(size=(2, 3))
        eps = self.rng.normal(size=(2, 3))
        rng = np.random.default_rng(9)
        self.diffusion.p_sample(x_t, np.array([1, 1]), eps, rng=rng)
        untouched = np.random.default_rng(9)
        np.testing.assert_array_equal(rng.standard_normal(4), untouched.standard_normal(4))

    def test_invalid_array_steps_rejected(self):
        with pytest.raises(ValueError):
            self.diffusion.q_sample(np.zeros((2, 3)), np.array([0, 5]))
        with pytest.raises(ValueError):
            self.diffusion.q_sample(np.zeros((2, 3)), np.array([1, 31]))
        with pytest.raises(ValueError):
            self.diffusion.q_sample(np.zeros((2, 3)), np.array([[1, 2]]))

    @settings(max_examples=20, deadline=None)
    @given(steps=st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=8))
    def test_property_gather_equals_per_sample_scalar(self, steps):
        t = np.asarray(steps)
        x0 = np.linspace(-1, 1, t.size * 6).reshape(t.size, 2, 3)
        noise = np.ones_like(x0) * 0.5
        x_t, _ = self.diffusion.q_sample(x0, t, noise=noise)
        for i, step in enumerate(steps):
            x_i, _ = self.diffusion.q_sample(x0[i], step, noise=noise[i])
            np.testing.assert_array_equal(x_t[i], x_i)


# ---------------------------------------------------------------------------
# Trajectories
# ---------------------------------------------------------------------------
class TestTrajectories:
    def test_full_trajectory(self):
        assert FullReverseSampler().trajectory(6) == [6, 5, 4, 3, 2, 1]

    def test_strided_by_stride_ends_at_one(self):
        assert StridedReverseSampler(stride=4).trajectory(20) == [20, 16, 12, 8, 4, 1]
        assert StridedReverseSampler(stride=4).trajectory(8) == [8, 4, 1]

    def test_stride_one_equals_full(self):
        assert (StridedReverseSampler(stride=1).trajectory(9)
                == FullReverseSampler().trajectory(9))

    def test_strided_by_count_is_evenly_spaced(self):
        traj = StridedReverseSampler(num_inference_steps=5).trajectory(20)
        assert len(traj) == 5
        assert traj[0] == 20 and traj[-1] == 1
        assert traj == sorted(traj, reverse=True)

    def test_count_larger_than_num_steps_clamps(self):
        traj = StridedReverseSampler(num_inference_steps=50).trajectory(8)
        assert traj == list(range(8, 0, -1))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            StridedReverseSampler()
        with pytest.raises(ValueError):
            StridedReverseSampler(stride=2, num_inference_steps=4)
        with pytest.raises(ValueError):
            StridedReverseSampler(stride=0)
        with pytest.raises(ValueError):
            StridedReverseSampler(num_inference_steps=1)

    def test_make_sampler(self):
        assert make_sampler("full").name == "full"
        assert make_sampler("strided", num_inference_steps=4).name == "strided"
        assert make_sampler("strided", stride=2).trajectory(6) == [6, 4, 2, 1]
        with pytest.raises(KeyError):
            make_sampler("unknown")
        with pytest.raises(ValueError):
            make_sampler("strided")

    def test_full_sampler_rejects_jumps(self):
        diffusion = GaussianDiffusion(linear_beta_schedule(10))
        with pytest.raises(ValueError):
            FullReverseSampler().step(diffusion, np.zeros(3), 8, 4, np.zeros(3))


# ---------------------------------------------------------------------------
# Stride-1 identity against the frozen pre-engine reverse loop
# ---------------------------------------------------------------------------
def _legacy_impute(imputer, windows, masks, policies, rng, collect="sample",
                   deterministic=False):
    """The pre-engine reverse loop, frozen verbatim (scalar t, full walk)."""
    windows = np.asarray(windows, dtype=np.float64)
    masks = np.asarray(masks, dtype=np.float64)
    batch = windows.shape[0]
    diffusion = imputer.diffusion

    x0 = windows.transpose(0, 2, 1)
    observed = masks.transpose(0, 2, 1)
    target_region = 1.0 - observed

    x_t = diffusion.prior_sample(x0.shape, rng) * target_region
    intermediate = []
    for t in range(diffusion.num_steps, 0, -1):
        steps = np.full(batch, t, dtype=np.int64)
        step_noise = rng.standard_normal(x0.shape)
        reference = imputer._reference_channel(x0, observed, step_noise)
        model_input = imputer._build_input(x_t * target_region, reference)
        predicted_eps = imputer.model(model_input, steps, policies).data

        if collect == "x0":
            estimate = diffusion.predict_x0_from_eps(x_t, t, predicted_eps)
        x_prev = diffusion.p_sample(x_t, t, predicted_eps, rng=rng,
                                    deterministic=deterministic)
        x_prev = x_prev * target_region
        if collect == "sample":
            estimate = x_prev
        intermediate.append((t, (estimate * target_region + x0 * observed).transpose(0, 2, 1)))
        x_t = x_prev
    final = (x_t * target_region + x0 * observed).transpose(0, 2, 1)
    return final, intermediate


def _tiny_imputer(num_steps=8, seed=0):
    rng = np.random.default_rng(seed)
    model = ImTransformer(num_features=4, hidden_dim=8, num_blocks=1,
                          num_heads=2, rng=rng)
    diffusion = GaussianDiffusion(quadratic_beta_schedule(num_steps))
    imputer = ImputedDiffusion(model, diffusion)
    masks = GratingMasking(2, 2).masks(20, 4)
    windows = np.random.default_rng(seed + 1).normal(size=(3, 20, 4))
    mask_batch = np.stack([masks[0], masks[1], masks[0]])
    policies = np.array([0, 1, 0])
    return imputer, windows, mask_batch, policies


class TestStrideOneIdentity:
    @pytest.mark.parametrize("collect", ["sample", "x0"])
    @pytest.mark.parametrize("deterministic", [False, True])
    def test_engine_matches_legacy_loop(self, collect, deterministic):
        imputer, windows, masks, policies = _tiny_imputer()
        legacy_final, legacy_steps = _legacy_impute(
            imputer, windows, masks, policies, np.random.default_rng(7),
            collect=collect, deterministic=deterministic)
        for sampler in (None, FullReverseSampler(), StridedReverseSampler(stride=1)):
            result = imputer.impute(windows, masks, policies,
                                    np.random.default_rng(7), collect=collect,
                                    deterministic=deterministic, sampler=sampler)
            np.testing.assert_array_equal(result.final, legacy_final)
            assert result.steps() == [step for step, _ in legacy_steps]
            for (_, expected), (_, actual) in zip(legacy_steps, result.intermediate):
                np.testing.assert_array_equal(actual, expected)


# ---------------------------------------------------------------------------
# Strided trajectories through impute and the detector
# ---------------------------------------------------------------------------
class TestStridedImpute:
    def test_steps_reflect_visited_subsequence(self):
        imputer, windows, masks, policies = _tiny_imputer(num_steps=8)
        result = imputer.impute(windows, masks, policies, np.random.default_rng(0),
                                sampler=StridedReverseSampler(stride=4))
        assert result.steps() == [8, 4, 1]
        assert len(result.intermediate) == 3
        assert np.isfinite(result.final).all()

    def test_strided_preserves_observed_values(self):
        imputer, windows, masks, policies = _tiny_imputer(num_steps=8)
        result = imputer.impute(windows, masks, policies, np.random.default_rng(0),
                                sampler=StridedReverseSampler(num_inference_steps=3))
        observed = masks.astype(bool)
        np.testing.assert_allclose(result.final[observed], windows[observed])
        for _, estimate in result.intermediate:
            np.testing.assert_allclose(estimate[observed], windows[observed])

    def test_imputation_error_keys_follow_visited_steps(self):
        imputer, windows, masks, policies = _tiny_imputer(num_steps=8)
        result = imputer.impute(windows, masks, policies, np.random.default_rng(0),
                                sampler=StridedReverseSampler(stride=4))
        errors = imputer.imputation_error(windows, result, masks)
        assert sorted(errors) == [1, 4, 8]


def _fitted_detector(**overrides):
    rng = np.random.default_rng(0)
    config = ImDiffusionConfig(
        window_size=16, num_steps=8, epochs=1, hidden_dim=8, num_blocks=1,
        num_heads=2, max_train_windows=8, num_masked_windows=2,
        num_unmasked_windows=2, batch_size=16, seed=0, **overrides)
    series = (np.sin(np.linspace(0, 12 * np.pi, 240))[:, None]
              * np.ones((1, 3)) + 0.05 * rng.standard_normal((240, 3)))
    return ImDiffusionDetector(config).fit(series), series


class TestDetectorStridedScoring:
    def test_config_inference_steps(self):
        assert ImDiffusionConfig(num_steps=8).inference_steps == 8
        assert ImDiffusionConfig(num_steps=8, sampler="strided",
                                 num_inference_steps=3).inference_steps == 3
        # strided default: about a quarter of the trajectory
        assert ImDiffusionConfig(num_steps=20, sampler="strided").inference_steps == 5

    def test_num_inference_steps_implies_strided(self):
        config = ImDiffusionConfig(num_steps=8, num_inference_steps=4)
        assert config.sampler == "strided"
        assert config.inference_steps == 4

    def test_config_rejects_bad_engine_knobs(self):
        with pytest.raises(ValueError):
            ImDiffusionConfig(sampler="warp")
        with pytest.raises(ValueError):
            ImDiffusionConfig(num_steps=8, num_inference_steps=9)
        with pytest.raises(ValueError):
            ImDiffusionConfig(num_inference_steps=1)

    def test_score_collects_inference_steps_entries(self):
        detector, series = _fitted_detector(sampler="strided", num_inference_steps=3)
        step_errors = detector.score(series)
        assert sorted(step_errors) == [1, 2, 3]
        for errors in step_errors.values():
            assert errors.shape == (series.shape[0],)
            assert np.isfinite(errors).all()

    def test_predict_works_with_strided_sampler(self):
        detector, series = _fitted_detector(sampler="strided", num_inference_steps=3)
        result = detector.predict(series)
        assert result.labels.shape == (series.shape[0],)
        assert set(np.unique(result.labels)) <= {0, 1}

    def test_full_and_stride1_scores_are_identical(self):
        detector, series = _fitted_detector()
        full_errors = detector.score(series)

        stride1, _ = _fitted_detector(sampler="strided", num_inference_steps=8)
        step_errors = stride1.score(series)
        assert sorted(step_errors) == sorted(full_errors)
        for key in full_errors:
            np.testing.assert_array_equal(step_errors[key], full_errors[key])

    def test_model_left_in_training_mode_after_score(self):
        detector, series = _fitted_detector()
        assert detector.model.training
        detector.score(series)
        assert detector.model.training

    def test_checkpoint_round_trip_preserves_engine_knobs(self):
        detector, series = _fitted_detector(sampler="strided", num_inference_steps=3)
        arrays, metadata = detector.to_checkpoint()
        restored = ImDiffusionDetector.from_checkpoint(arrays, metadata)
        assert restored.config.sampler == "strided"
        assert restored.config.num_inference_steps == 3
        np.testing.assert_array_equal(
            restored.score(series)[3], detector.score(series)[3])


class TestServingStridedScoring:
    def test_incremental_scorer_sizes_cache_by_inference_steps(self):
        from repro.serving import IncrementalScorer

        detector, series = _fitted_detector(sampler="strided", num_inference_steps=3,
                                            deterministic_inference=True)
        scorer = IncrementalScorer(detector, history=64)
        assert scorer.num_steps == 3
        scorer.register_tenant("t0")
        scorer.ingest("t0", series[:48])
        assert scorer.score_pending("t0") == 3
        view = scorer.decide("t0")
        assert view.labels.shape[0] == 48
        assert np.isfinite(view.scores).all()

    def test_score_window_batch_keys_match_inference_steps(self):
        from repro.serving import IncrementalScorer

        detector, series = _fitted_detector(sampler="strided", num_inference_steps=3,
                                            deterministic_inference=True)
        scorer = IncrementalScorer(detector, history=64)
        windows = np.stack([series[:16], series[16:32]])
        errors = scorer.score_window_batch(windows, rng=np.random.default_rng(0))
        assert sorted(errors) == [1, 2, 3]
        assert errors[3].shape == (2, 16)


class TestEvaluationRunnerKnob:
    def test_engine_overrides_are_applied(self):
        from repro.data import load_dataset
        from repro.evaluation import evaluate_detector

        dataset = load_dataset("SMD", seed=0, scale=0.02)
        seen = []

        def factory(seed):
            detector = ImDiffusionDetector(ImDiffusionConfig(
                window_size=16, num_steps=6, epochs=1, hidden_dim=8,
                num_blocks=1, num_heads=2, max_train_windows=8,
                num_masked_windows=2, num_unmasked_windows=2, seed=seed))
            seen.append(detector)
            return detector

        summary = evaluate_detector(factory, dataset, num_runs=1,
                                    sampler="strided", num_inference_steps=2)
        assert len(summary.runs) == 1
        assert seen[0].config.sampler == "strided"
        assert seen[0].config.num_inference_steps == 2

    def test_overrides_skip_baselines(self):
        from repro.evaluation import apply_detector_overrides

        class Plain:
            pass

        detector = Plain()
        assert apply_detector_overrides(detector, sampler="strided",
                                        num_inference_steps=4) is detector

    def test_full_override_clears_implied_step_count(self):
        from repro.evaluation import apply_detector_overrides

        detector = ImDiffusionDetector(ImDiffusionConfig(
            num_steps=8, sampler="strided", num_inference_steps=3))
        apply_detector_overrides(detector, sampler="full")
        assert detector.config.sampler == "full"
        assert detector.config.num_inference_steps is None
        assert detector.config.inference_steps == 8
