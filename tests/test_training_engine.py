"""Tests for the unified training engine (Trainer, callbacks, WindowLoader).

The centrepiece is the frozen-loop regression: ``_legacy_fit`` below is the
pre-refactor ``ImDiffusionDetector.fit`` epoch loop, copied verbatim, and the
migrated Trainer-based ``fit`` must produce bit-identical parameters and loss
curve for a fixed seed — the same technique PR 2 used to pin the sampler
refactor to the paper loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ImDiffusionConfig, ImDiffusionDetector
from repro.core.modes import recommended_stride
from repro.data.windows import sliding_windows
from repro.nn import Adam, CosineLR, Linear, StepLR, Tensor, clip_grad_norm
from repro.nn import functional as F
from repro.nn.serialization import load_checkpoint
from repro.training import (
    Batch,
    Checkpoint,
    EarlyStopping,
    LambdaCallback,
    LossHistory,
    LRSchedule,
    Trainer,
    WindowLoader,
)


def _series(length=200, num_channels=4, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    base = np.sin(2 * np.pi * t / 32)[:, None] * np.ones((1, num_channels))
    return base + 0.1 * rng.standard_normal((length, num_channels))


def _small_config(**overrides):
    defaults = dict(window_size=16, num_steps=6, epochs=3, hidden_dim=8,
                    num_blocks=1, num_heads=2, batch_size=4,
                    num_masked_windows=2, num_unmasked_windows=2,
                    max_train_windows=16, train_stride=8, seed=0)
    defaults.update(overrides)
    return ImDiffusionConfig(**defaults)


# ---------------------------------------------------------------------------
# Frozen pre-refactor ImDiffusion training loop (verbatim copy)
# ---------------------------------------------------------------------------
def _legacy_fit(detector: ImDiffusionDetector, train: np.ndarray) -> ImDiffusionDetector:
    """The seed-era ``fit`` body, frozen: hand-rolled epochs + per-batch stack."""
    config = detector.config
    train = np.asarray(train, dtype=np.float64)
    detector._num_features = train.shape[1]
    scaled = detector._scaler.fit_transform(train)
    train_stride = config.train_stride or recommended_stride(config)
    windows, _ = sliding_windows(scaled, config.window_size, train_stride)

    if config.max_train_windows is not None and windows.shape[0] > config.max_train_windows:
        chosen = detector._rng.choice(windows.shape[0], size=config.max_train_windows,
                                      replace=False)
        windows = windows[chosen]

    masks = detector._build_network(detector._num_features)
    model = detector._imputer.model

    optimizer = Adam(model.parameters(), lr=config.learning_rate)
    num_windows = windows.shape[0]
    detector.train_losses = []
    for _ in range(config.epochs):
        order = detector._rng.permutation(num_windows)
        epoch_losses = []
        for start in range(0, num_windows, config.batch_size):
            batch_idx = order[start:start + config.batch_size]
            batch = windows[batch_idx]
            policies = detector._rng.integers(0, len(masks), size=batch.shape[0])
            batch_masks = np.stack([masks[p] for p in policies])
            optimizer.zero_grad()
            loss = detector._imputer.training_loss(batch, batch_masks, policies,
                                                   detector._rng)
            loss.backward()
            clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
            epoch_losses.append(float(loss.data))
        detector.train_losses.append(float(np.mean(epoch_losses)))
    return detector


class TestLegacyLoopBitIdentity:
    def test_migrated_fit_matches_frozen_loop(self):
        series = _series()
        migrated = ImDiffusionDetector(_small_config()).fit(series)
        legacy = _legacy_fit(ImDiffusionDetector(_small_config()), series)

        assert migrated.train_losses == legacy.train_losses
        new_state = migrated.model.state_dict()
        old_state = legacy.model.state_dict()
        assert set(new_state) == set(old_state)
        for name in new_state:
            np.testing.assert_array_equal(new_state[name], old_state[name])

    def test_rng_stream_position_matches(self):
        # Post-training predictions must agree too: the random stream has to
        # end up at the same position, not just the weights.
        series = _series()
        migrated = ImDiffusionDetector(_small_config(deterministic_inference=True,
                                                     collect="x0")).fit(series)
        legacy_detector = ImDiffusionDetector(_small_config(deterministic_inference=True,
                                                            collect="x0"))
        legacy = _legacy_fit(legacy_detector, series)
        test = _series(length=80, seed=3)
        new_scores = migrated.score(test)
        old_scores = legacy.score(test)
        for step in new_scores:
            np.testing.assert_array_equal(new_scores[step], old_scores[step])


# ---------------------------------------------------------------------------
# WindowLoader
# ---------------------------------------------------------------------------
class TestWindowLoader:
    def test_batches_cover_every_sample_once(self):
        data = np.arange(22, dtype=np.float64).reshape(11, 2)
        loader = WindowLoader(data, batch_size=4, rng=np.random.default_rng(0))
        seen = np.concatenate([batch.indices for batch in loader])
        assert sorted(seen.tolist()) == list(range(11))
        assert len(loader) == 3

    def test_multiple_aligned_arrays(self):
        inputs = np.arange(30, dtype=np.float64).reshape(10, 3)
        targets = np.arange(10, dtype=np.float64)
        loader = WindowLoader(inputs, targets, batch_size=4,
                              rng=np.random.default_rng(0))
        for batch in loader:
            batch_inputs, batch_targets = batch
            np.testing.assert_array_equal(batch_inputs[:, 0] / 3, batch_targets)

    def test_shuffle_matches_legacy_permutation_stream(self):
        data = np.arange(9, dtype=np.float64)[:, None]
        loader_rng = np.random.default_rng(42)
        legacy_rng = np.random.default_rng(42)
        loader = WindowLoader(data, batch_size=2, rng=loader_rng)
        for _ in range(2):  # two epochs
            batches = [batch.indices for batch in loader]
            order = legacy_rng.permutation(9)
            expected = [order[s:s + 2] for s in range(0, 9, 2)]
            for actual, exp in zip(batches, expected):
                np.testing.assert_array_equal(actual, exp)

    def test_no_shuffle_walks_in_order(self):
        data = np.arange(5, dtype=np.float64)[:, None]
        loader = WindowLoader(data, batch_size=2, shuffle=False)
        seen = np.concatenate([batch.indices for batch in loader])
        np.testing.assert_array_equal(seen, np.arange(5))

    def test_validation(self):
        data = np.zeros((4, 2))
        with pytest.raises(ValueError):
            WindowLoader(data, np.zeros(3), batch_size=2, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            WindowLoader(data, batch_size=0, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            WindowLoader(data, batch_size=2)  # shuffle without rng
        with pytest.raises(ValueError):
            WindowLoader(batch_size=2)


# ---------------------------------------------------------------------------
# Trainer basics on a tiny least-squares problem
# ---------------------------------------------------------------------------
def _toy_problem(seed=0, num_samples=64, noise=0.0):
    rng = np.random.default_rng(seed)
    inputs = rng.standard_normal((num_samples, 3))
    true_w = np.array([[1.0], [-2.0], [0.5]])
    targets = inputs @ true_w + noise * rng.standard_normal((num_samples, 1))
    return inputs, targets


def _toy_trainer(seed=0, lr=0.05, callbacks=(), noise=0.0, grad_clip=None):
    rng = np.random.default_rng(seed)
    model = Linear(3, 1, rng=rng)
    inputs, targets = _toy_problem(seed, noise=noise)
    loader = WindowLoader(inputs, targets, batch_size=16, rng=rng)
    optimizer = Adam(model.parameters(), lr=lr)

    def loss_fn(batch, state):
        batch_inputs, batch_targets = batch
        return F.mse_loss(model(Tensor(batch_inputs)), Tensor(batch_targets))

    trainer = Trainer(model.parameters(), optimizer, loss_fn,
                      grad_clip=grad_clip, callbacks=list(callbacks), rng=rng)
    return trainer, loader, model, optimizer


class TestTrainer:
    def test_loss_decreases(self):
        trainer, loader, _, _ = _toy_trainer()
        result = trainer.fit(loader, epochs=20)
        assert result.epochs_run == 20
        assert not result.stopped_early
        assert result.epoch_losses[-1] < result.epoch_losses[0] * 0.1
        assert result.wall_seconds > 0
        assert result.final_loss == result.epoch_losses[-1]

    def test_hook_order_and_counts(self):
        events = []
        callback = LambdaCallback(
            on_train_start=lambda t, s: events.append("train_start"),
            on_epoch_start=lambda t, s: events.append("epoch_start"),
            on_batch_end=lambda t, s: events.append("batch_end"),
            on_epoch_end=lambda t, s: events.append("epoch_end"),
            on_train_end=lambda t, s: events.append("train_end"),
        )
        trainer, loader, _, _ = _toy_trainer(callbacks=[callback])
        trainer.fit(loader, epochs=2)
        batches = len(loader)
        expected = (["train_start"]
                    + (["epoch_start"] + ["batch_end"] * batches + ["epoch_end"]) * 2
                    + ["train_end"])
        assert events == expected

    def test_loss_history_callback(self):
        history = LossHistory(record_batches=True)
        trainer, loader, _, _ = _toy_trainer(callbacks=[history])
        result = trainer.fit(loader, epochs=3)
        assert history.epoch_losses == result.epoch_losses
        assert len(history.batch_losses) == 3 * len(loader)

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            rng = np.random.default_rng(0)
            model = Linear(2, 1, rng=rng)
            Trainer([], Adam(model.parameters(), lr=0.1), lambda b, s: None)


# ---------------------------------------------------------------------------
# Early stopping
# ---------------------------------------------------------------------------
class TestEarlyStopping:
    def test_stops_at_patience_on_plateau(self):
        # min_delta so large every epoch counts as non-improving after the first.
        stopper = EarlyStopping(patience=2, min_delta=1e9, restore_best=False)
        trainer, loader, _, _ = _toy_trainer(callbacks=[stopper])
        result = trainer.fit(loader, epochs=50)
        assert result.stopped_early
        assert result.epochs_run == 3  # best at epoch 0, then patience=2 misses
        assert "early stop" in result.stop_reason

    def test_restores_best_weights(self):
        stopper = EarlyStopping(patience=1, min_delta=1e9, restore_best=True)
        trainer, loader, model, _ = _toy_trainer(callbacks=[stopper])
        trainer.fit(loader, epochs=10)
        # Re-run without early stopping for one epoch to capture the epoch-0
        # weights the stopper should have restored.
        trainer2, loader2, model2, _ = _toy_trainer()
        trainer2.fit(loader2, epochs=1)
        for p, q in zip(model.parameters(), model2.parameters()):
            np.testing.assert_array_equal(p.data, q.data)

    def test_improving_run_never_stops(self):
        stopper = EarlyStopping(patience=2)
        trainer, loader, _, _ = _toy_trainer(callbacks=[stopper])
        result = trainer.fit(loader, epochs=10)
        assert not result.stopped_early
        assert result.epochs_run == 10

    def test_custom_monitor(self):
        values = iter([5.0, 4.0, 4.0, 4.0, 4.0])
        stopper = EarlyStopping(patience=2, restore_best=False,
                                monitor=lambda t, s: next(values))
        trainer, loader, _, _ = _toy_trainer(callbacks=[stopper])
        result = trainer.fit(loader, epochs=5)
        assert result.stopped_early
        assert result.epochs_run == 4

    def test_detector_early_stopping_config(self):
        # The knob wires through ImDiffusionConfig and shortens training.
        series = _series()
        config = _small_config(epochs=10, early_stopping_patience=1,
                               early_stopping_min_delta=1e9)
        detector = ImDiffusionDetector(config).fit(series)
        assert detector.last_train_result.stopped_early
        assert detector.last_train_result.epochs_run == 2
        assert len(detector.train_losses) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)


# ---------------------------------------------------------------------------
# LR schedules
# ---------------------------------------------------------------------------
class TestLRSchedules:
    def test_cosine_boundaries(self):
        rng = np.random.default_rng(0)
        model = Linear(2, 1, rng=rng)
        optimizer = Adam(model.parameters(), lr=1.0)
        schedule = CosineLR(optimizer, total_epochs=11, warmup_epochs=3, min_lr=0.1)
        # Step 0: first warmup epoch at base_lr / warmup_epochs.
        assert optimizer.lr == pytest.approx(1.0 / 3.0)
        rates = [optimizer.lr]
        for _ in range(10):
            schedule.step()
            rates.append(optimizer.lr)
        # Warmup end (epoch 3): exactly the base rate.
        assert rates[3] == pytest.approx(1.0)
        # Final step: exactly min_lr.
        assert rates[10] == pytest.approx(0.1)
        # Midpoint of the cosine segment: average of base and min.
        assert rates[3 + (10 - 3) // 2 + 1] < rates[3]
        assert all(r2 <= r1 + 1e-12 for r1, r2 in zip(rates[3:], rates[4:]))

    def test_cosine_without_warmup(self):
        rng = np.random.default_rng(0)
        optimizer = Adam(Linear(2, 1, rng=rng).parameters(), lr=2.0)
        schedule = CosineLR(optimizer, total_epochs=5)
        assert optimizer.lr == pytest.approx(2.0)  # step 0 = base rate
        for _ in range(4):
            schedule.step()
        assert optimizer.lr == pytest.approx(0.0)  # final step = min_lr (default 0)
        schedule.step()  # stepping past the end clamps, never goes negative
        assert optimizer.lr == pytest.approx(0.0)

    def test_cosine_single_epoch_and_validation(self):
        rng = np.random.default_rng(0)
        optimizer = Adam(Linear(2, 1, rng=rng).parameters(), lr=1.0)
        CosineLR(optimizer, total_epochs=1)
        assert optimizer.lr == pytest.approx(1.0)
        with pytest.raises(ValueError):
            CosineLR(optimizer, total_epochs=0)
        with pytest.raises(ValueError):
            CosineLR(optimizer, total_epochs=3, warmup_epochs=3)
        with pytest.raises(ValueError):
            CosineLR(optimizer, total_epochs=3, min_lr=-0.1)

    def test_lr_schedule_callback_steps_per_epoch(self):
        trainer, loader, _, optimizer = _toy_trainer(lr=1.0)
        schedule = CosineLR(optimizer, total_epochs=4, min_lr=0.0)
        trainer.callbacks.append(LRSchedule(schedule))
        trainer.fit(loader, epochs=4)
        assert optimizer.lr == pytest.approx(0.0)

    def test_detector_lr_schedule_config(self):
        series = _series()
        config = _small_config(epochs=4, lr_schedule="cosine", lr_warmup_epochs=1)
        detector = ImDiffusionDetector(config).fit(series)
        assert len(detector.train_losses) == 4
        with pytest.raises(ValueError):
            _small_config(lr_schedule="nonsense")
        with pytest.raises(ValueError):
            _small_config(epochs=3, lr_warmup_epochs=3)


# ---------------------------------------------------------------------------
# Checkpoint / resume determinism
# ---------------------------------------------------------------------------
class TestCheckpointResume:
    def test_resume_is_bit_identical_to_uninterrupted_run(self, tmp_path):
        path = str(tmp_path / "trainer.ckpt.npz")

        # Uninterrupted run: N + M = 6 epochs.
        full_trainer, full_loader, full_model, _ = _toy_trainer(noise=0.1)
        full_trainer.fit(full_loader, epochs=6)

        # Interrupted run: 3 epochs, checkpoint, fresh trainer, resume to 6.
        part_trainer, part_loader, _, _ = _toy_trainer(
            noise=0.1, callbacks=[Checkpoint(path)])
        part_trainer.fit(part_loader, epochs=3)

        resumed_trainer, resumed_loader, resumed_model, _ = _toy_trainer(
            noise=0.1, callbacks=[Checkpoint(path)])
        arrays, metadata = load_checkpoint(path)
        resumed_trainer.load_state_dict(arrays, metadata)
        assert resumed_trainer.state.epoch == 3
        result = resumed_trainer.fit(resumed_loader, epochs=6)

        assert result.epochs_run == 6
        assert len(result.epoch_losses) == 6
        for p, q in zip(resumed_model.parameters(), full_model.parameters()):
            np.testing.assert_array_equal(p.data, q.data)
        # The loss curves agree too (epochs 4..6 recomputed after resume).
        full_losses = full_trainer.state.epoch_losses
        np.testing.assert_array_equal(result.epoch_losses, full_losses)

    def test_periodic_and_best_snapshots(self, tmp_path):
        path = str(tmp_path / "ck.npz")
        checkpoint = Checkpoint(path, every=2, save_best=True)
        trainer, loader, _, _ = _toy_trainer(callbacks=[checkpoint])
        trainer.fit(loader, epochs=5)
        arrays, metadata = load_checkpoint(path)
        assert metadata["epoch"] == 5  # final on_train_end snapshot
        best_arrays, best_metadata = load_checkpoint(checkpoint.best_path)
        assert best_metadata["epoch"] <= 5
        assert set(arrays) == set(best_arrays)

    def test_final_snapshot_holds_post_restore_weights(self, tmp_path):
        # EarlyStopping restores the best epoch at train end; the trailing
        # Checkpoint must rewrite so disk matches the in-memory model even
        # when the stopping epoch coincided with a periodic save (every=1).
        path = str(tmp_path / "ck.npz")
        stopper = EarlyStopping(patience=1, min_delta=1e9, restore_best=True)
        trainer, loader, model, _ = _toy_trainer(
            callbacks=[stopper, Checkpoint(path, every=1)])
        result = trainer.fit(loader, epochs=10)
        assert result.stopped_early
        arrays, _ = load_checkpoint(path)
        for index, p in enumerate(model.parameters()):
            np.testing.assert_array_equal(arrays[f"param.{index}"], p.data)

    def test_load_rejects_mismatched_shapes(self, tmp_path):
        path = str(tmp_path / "ck.npz")
        trainer, loader, _, _ = _toy_trainer(callbacks=[Checkpoint(path)])
        trainer.fit(loader, epochs=1)
        arrays, metadata = load_checkpoint(path)

        rng = np.random.default_rng(0)
        other_model = Linear(5, 1, rng=rng)
        other = Trainer(other_model.parameters(),
                        Adam(other_model.parameters(), lr=0.1),
                        lambda b, s: None, rng=rng)
        with pytest.raises((ValueError, KeyError)):
            other.load_state_dict(arrays, metadata)

    def test_load_rejects_unknown_version(self, tmp_path):
        trainer, loader, _, _ = _toy_trainer()
        arrays, metadata = trainer.state_dict()
        metadata["format_version"] = 99
        with pytest.raises(ValueError):
            trainer.load_state_dict(arrays, metadata)

    def test_detector_checkpoint_callback(self, tmp_path):
        # Checkpoint plugs into ImDiffusionDetector.fit via the callbacks arg.
        path = str(tmp_path / "detector-train.npz")
        series = _series()
        detector = ImDiffusionDetector(_small_config())
        detector.fit(series, callbacks=[Checkpoint(path, every=1)])
        arrays, metadata = load_checkpoint(path)
        assert metadata["epoch"] == detector.config.epochs
        assert metadata["rng_state"] is not None
        num_params = len(detector.model.parameters())
        assert sum(1 for k in arrays if k.startswith("param.")) == num_params


# ---------------------------------------------------------------------------
# Optimizer state round-trips (the pieces resume determinism rests on)
# ---------------------------------------------------------------------------
class TestOptimizerState:
    def test_adam_state_round_trip(self):
        rng = np.random.default_rng(0)
        model = Linear(3, 2, rng=rng)
        optimizer = Adam(model.parameters(), lr=0.01)
        for p in model.parameters():
            p.grad = np.ones_like(p.data)
        optimizer.step()
        scalars, arrays = optimizer.state_dict()

        model2 = Linear(3, 2, rng=np.random.default_rng(0))
        optimizer2 = Adam(model2.parameters(), lr=0.5)
        optimizer2.load_state_dict(scalars, arrays)
        assert optimizer2.lr == optimizer.lr
        assert optimizer2._step_count == 1
        for p, q in zip(model.parameters(), model2.parameters()):
            q.grad = np.ones_like(q.data)
            p.grad = np.ones_like(p.data)
        optimizer.step()
        optimizer2.step()
        np.testing.assert_array_equal(
            optimizer._m[id(model.parameters()[0])],
            optimizer2._m[id(model2.parameters()[0])])

    def test_step_lr_state_round_trip(self):
        rng = np.random.default_rng(0)
        optimizer = Adam(Linear(2, 1, rng=rng).parameters(), lr=1.0)
        schedule = StepLR(optimizer, step_size=2, gamma=0.5)
        schedule.step()
        schedule.step()
        state = schedule.state_dict()

        optimizer2 = Adam(Linear(2, 1, rng=np.random.default_rng(0)).parameters(), lr=1.0)
        schedule2 = StepLR(optimizer2, step_size=2, gamma=0.5)
        schedule2.load_state_dict(state)
        assert optimizer2.lr == optimizer.lr == 0.5
        schedule.step()
        schedule.step()
        schedule2.step()
        schedule2.step()
        assert optimizer2.lr == optimizer.lr == 0.25
