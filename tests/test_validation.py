"""Tests for the held-out validation subsystem and checkpoint-safe resume.

Covers the PR 4 surface: the deterministic `split_windows` helper, the
Trainer-level `validate_fn` (recorded in `TrainState.val_losses` and
checkpointed), validation-aware `EarlyStopping` / `Checkpoint.save_best`,
the persisted early-stopping best weights (the resume regression), the
`validation_fraction` knob on the detector and the baselines, and the
evaluation runner's recorded validation curve.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ImDiffusionConfig, ImDiffusionDetector
from repro.baselines import BeatGANDetector, LSTMADDetector, OmniAnomalyDetector
from repro.evaluation import evaluate_detector
from repro.nn import Adam, Linear, Tensor
from repro.nn import functional as F
from repro.nn.serialization import load_checkpoint
from repro.training import (
    Checkpoint,
    EarlyStopping,
    Trainer,
    WindowLoader,
    monitored_loss,
    split_windows,
)


def _series(length=220, num_channels=4, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    base = np.sin(2 * np.pi * t / 32)[:, None] * np.ones((1, num_channels))
    return base + 0.1 * rng.standard_normal((length, num_channels))


def _small_config(**overrides):
    defaults = dict(window_size=16, num_steps=6, epochs=3, hidden_dim=8,
                    num_blocks=1, num_heads=2, batch_size=4,
                    num_masked_windows=2, num_unmasked_windows=2,
                    max_train_windows=16, train_stride=8, seed=0)
    defaults.update(overrides)
    return ImDiffusionConfig(**defaults)


# ---------------------------------------------------------------------------
# split_windows
# ---------------------------------------------------------------------------
class TestSplitWindows:
    def test_split_is_deterministic(self):
        data = np.arange(40, dtype=np.float64).reshape(20, 2)
        first = split_windows((data,), 0.25, np.random.default_rng(7))
        second = split_windows((data,), 0.25, np.random.default_rng(7))
        np.testing.assert_array_equal(first[0][0], second[0][0])
        np.testing.assert_array_equal(first[1][0], second[1][0])

    def test_sides_partition_the_samples(self):
        data = np.arange(20, dtype=np.float64)[:, None]
        (train,), (val,) = split_windows((data,), 0.25, np.random.default_rng(0))
        assert train.shape[0] == 15 and val.shape[0] == 5
        merged = sorted(np.concatenate([train, val]).ravel().tolist())
        assert merged == list(range(20))

    def test_fraction_zero_draws_nothing_from_the_rng(self):
        rng = np.random.default_rng(3)
        untouched = np.random.default_rng(3)
        (train,), val = split_windows((np.zeros((10, 2)),), 0.0, rng)
        assert val is None and train.shape == (10, 2)
        # The stream was not consumed: the next draw matches a fresh generator.
        assert rng.integers(0, 1 << 30) == untouched.integers(0, 1 << 30)

    def test_aligned_arrays_stay_aligned(self):
        inputs = np.arange(30, dtype=np.float64).reshape(10, 3)
        targets = np.arange(10, dtype=np.float64)
        (tr_in, tr_t), (va_in, va_t) = split_windows(
            (inputs, targets), 0.3, np.random.default_rng(0))
        np.testing.assert_array_equal(tr_in[:, 0] / 3, tr_t)
        np.testing.assert_array_equal(va_in[:, 0] / 3, va_t)

    def test_clamping_keeps_both_sides_non_empty(self):
        data = np.zeros((3, 1))
        (train,), (val,) = split_windows((data,), 0.9, np.random.default_rng(0))
        assert val.shape[0] == 2 and train.shape[0] == 1
        (train,), (val,) = split_windows((data,), 0.01, np.random.default_rng(0))
        assert val.shape[0] == 1 and train.shape[0] == 2

    def test_single_sample_is_never_split(self):
        (train,), val = split_windows((np.zeros((1, 2)),), 0.5,
                                      np.random.default_rng(0))
        assert val is None and train.shape[0] == 1

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            split_windows((np.zeros((4, 1)),), 1.0, rng)
        with pytest.raises(ValueError):
            split_windows((np.zeros((4, 1)),), -0.1, rng)
        with pytest.raises(ValueError):
            split_windows((np.zeros((4, 1)), np.zeros(3)), 0.2, rng)
        with pytest.raises(ValueError):
            split_windows((), 0.2, rng)
        with pytest.raises(ValueError, match="split"):
            split_windows((np.zeros((4, 1)),), 0.2, rng, split="head")


class TestTailSplit:
    def test_tail_holds_out_the_last_samples(self):
        data = np.arange(20, dtype=np.float64)[:, None]
        (train,), (val,) = split_windows((data,), 0.25,
                                         np.random.default_rng(0), split="tail")
        np.testing.assert_array_equal(train.ravel(), np.arange(15))
        np.testing.assert_array_equal(val.ravel(), np.arange(15, 20))

    def test_tail_split_never_consumes_the_rng(self):
        rng = np.random.default_rng(3)
        untouched = np.random.default_rng(3)
        split_windows((np.zeros((10, 2)),), 0.3, rng, split="tail")
        assert rng.integers(0, 1 << 30) == untouched.integers(0, 1 << 30)

    def test_tail_split_accepts_rngless_calls(self):
        # No randomness is needed, so None is a valid generator.
        (train,), (val,) = split_windows((np.arange(10.0),), 0.2, None,
                                         split="tail")
        assert train.shape[0] == 8 and val.shape[0] == 2

    def test_detector_tail_validation_uses_the_latest_windows(self):
        # With a tail split and no max_train_windows subsampling, training on
        # a series whose tail is shifted must change the val curve but the
        # shared prefix keeps the same training stream length.
        series = _series(length=220)
        config = _small_config(validation_fraction=0.25,
                               validation_split="tail",
                               max_train_windows=None)
        detector = ImDiffusionDetector(config)
        detector.fit(series)
        assert len(detector.val_losses) == config.epochs
        assert all(np.isfinite(loss) for loss in detector.val_losses)

    def test_config_rejects_bad_split(self):
        with pytest.raises(ValueError, match="validation_split"):
            _small_config(validation_split="head")

    def test_tail_split_survives_max_train_windows_subsampling(self, monkeypatch):
        # rng.choice returns an unsorted subset; under a tail split the
        # detector must restore time order before splitting, or "the last
        # windows" would be a random subset instead of the series tail.
        import repro.core.detector as detector_module

        captured = {}
        real_split = detector_module.split_windows

        def spy(arrays, fraction, rng, split="random"):
            captured["windows"] = arrays[0]
            return real_split(arrays, fraction, rng, split=split)

        monkeypatch.setattr(detector_module, "split_windows", spy)
        # Strictly increasing series: window start values encode time order.
        series = np.arange(220, dtype=np.float64)[:, None] * np.ones((1, 2))
        series += 0.01 * np.random.default_rng(0).standard_normal(series.shape)
        config = _small_config(validation_fraction=0.25,
                               validation_split="tail", max_train_windows=8)
        ImDiffusionDetector(config).fit(series)
        firsts = captured["windows"][:, 0, 0]
        assert np.all(np.diff(firsts) > 0)

    def test_baseline_subsample_is_time_ordered_under_tail(self):
        random_order = LSTMADDetector(seed=0)._subsample_indices(100, 10)
        tail_order = LSTMADDetector(seed=0, validation_split="tail") \
            ._subsample_indices(100, 10)
        # Same single draw off the same seed; the tail variant sorts it.
        np.testing.assert_array_equal(np.sort(random_order), tail_order)
        assert np.all(np.diff(tail_order) > 0)


# ---------------------------------------------------------------------------
# Trainer.validate_fn
# ---------------------------------------------------------------------------
def _toy_trainer(seed=0, lr=0.05, callbacks=(), validate_fn=None, noise=0.0):
    rng = np.random.default_rng(seed)
    model = Linear(3, 1, rng=rng)
    inputs = rng.standard_normal((64, 3))
    targets = inputs @ np.array([[1.0], [-2.0], [0.5]])
    if noise:
        targets = targets + noise * rng.standard_normal(targets.shape)
    loader = WindowLoader(inputs, targets, batch_size=16, rng=rng)
    optimizer = Adam(model.parameters(), lr=lr)

    def loss_fn(batch, state):
        batch_inputs, batch_targets = batch
        return F.mse_loss(model(Tensor(batch_inputs)), Tensor(batch_targets))

    trainer = Trainer(model.parameters(), optimizer, loss_fn,
                      callbacks=list(callbacks), rng=rng, validate_fn=validate_fn)
    return trainer, loader, model


class TestTrainerValidation:
    def test_val_losses_recorded_per_epoch(self):
        values = iter([4.0, 3.0, 2.0, 1.0])
        trainer, loader, _ = _toy_trainer(validate_fn=lambda t, s: next(values))
        result = trainer.fit(loader, epochs=4)
        assert result.val_losses == [4.0, 3.0, 2.0, 1.0]
        assert trainer.state.val_losses == result.val_losses
        assert result.final_val_loss == 1.0

    def test_val_losses_round_trip_through_checkpoint(self):
        values = iter([4.0, 3.0])
        trainer, loader, _ = _toy_trainer(validate_fn=lambda t, s: next(values))
        trainer.fit(loader, epochs=2)
        arrays, metadata = trainer.state_dict()
        assert metadata["val_losses"] == [4.0, 3.0]

        restored, _, _ = _toy_trainer()
        restored.load_state_dict(arrays, metadata)
        assert restored.state.val_losses == [4.0, 3.0]

    def test_early_stopping_monitors_val_loss_when_present(self):
        # Train loss keeps improving; the held-out loss plateaus immediately,
        # so a validation-aware stopper must fire at its patience.
        trainer, loader, _ = _toy_trainer(
            validate_fn=lambda t, s: 1.0,
            callbacks=[EarlyStopping(patience=2, restore_best=False)])
        result = trainer.fit(loader, epochs=30)
        assert result.stopped_early
        assert result.epochs_run == 3  # val best at epoch 0, then 2 misses
        assert result.epoch_losses[-1] < result.epoch_losses[0]  # train improved

    def test_monitored_loss_prefers_val(self):
        trainer, loader, _ = _toy_trainer(validate_fn=lambda t, s: 7.5)
        trainer.fit(loader, epochs=1)
        assert monitored_loss(trainer.state) == 7.5
        plain, plain_loader, _ = _toy_trainer()
        plain.fit(plain_loader, epochs=1)
        assert monitored_loss(plain.state) == plain.state.epoch_losses[-1]


# ---------------------------------------------------------------------------
# Checkpoint: monitored save_best + persisted last_saved_epoch
# ---------------------------------------------------------------------------
class TestCheckpointValidationAware:
    def test_save_best_follows_the_monitored_val_loss(self, tmp_path):
        # Held-out curve dips at epoch 2 while the train loss decreases
        # monotonically: the best snapshot must be the val-best epoch.
        path = str(tmp_path / "ck.npz")
        values = iter([3.0, 1.0, 2.0, 2.5])
        checkpoint = Checkpoint(path, save_best=True)
        trainer, loader, _ = _toy_trainer(
            validate_fn=lambda t, s: next(values), callbacks=[checkpoint])
        trainer.fit(loader, epochs=4)
        _, best_metadata = load_checkpoint(checkpoint.best_path)
        assert best_metadata["epoch"] == 2
        assert checkpoint.best_value == 1.0

    def test_last_saved_epoch_round_trips(self, tmp_path):
        path = str(tmp_path / "ck.npz")
        checkpoint = Checkpoint(path, every=2)
        trainer, loader, _ = _toy_trainer(callbacks=[checkpoint])
        trainer.fit(loader, epochs=3)
        assert checkpoint.last_saved_epoch == 3  # final on_train_end save
        state = checkpoint.state_dict()
        assert state["last_saved_epoch"] == 3

        fresh = Checkpoint(path, every=2)
        fresh.load_state_dict(state)
        assert fresh.last_saved_epoch == 3
        assert fresh.best_value == checkpoint.best_value

    def test_extra_metadata_is_written_and_collision_checked(self, tmp_path):
        path = str(tmp_path / "ck.npz")
        checkpoint = Checkpoint(path, extra_metadata={"cli_run": {"seed": 3}})
        trainer, loader, _ = _toy_trainer(callbacks=[checkpoint])
        trainer.fit(loader, epochs=1)
        _, metadata = load_checkpoint(path)
        assert metadata["cli_run"] == {"seed": 3}

        clashing = Checkpoint(path, extra_metadata={"epoch": 0})
        trainer2, loader2, _ = _toy_trainer(callbacks=[clashing])
        with pytest.raises(ValueError):
            trainer2.fit(loader2, epochs=1)


# ---------------------------------------------------------------------------
# EarlyStopping best weights survive a checkpoint/resume boundary
# ---------------------------------------------------------------------------
class TestBestWeightResume:
    def _make(self, path, patience=3):
        stopper = EarlyStopping(patience=patience, min_delta=1e9,
                                restore_best=True)
        trainer, loader, model = _toy_trainer(
            callbacks=[stopper, Checkpoint(path)])
        return trainer, loader, model, stopper

    def test_best_weights_restored_after_resume(self, tmp_path):
        path = str(tmp_path / "ck.npz")
        # min_delta is huge, so epoch 0 stays the best epoch forever.
        # Interrupt after epoch 2 — *after* the best epoch — and resume.
        trainer, loader, _, _ = self._make(path)
        trainer.fit(loader, epochs=2)

        # The epoch-0 weights the stopper should hand back at train end.
        reference, reference_loader, reference_model = _toy_trainer()
        reference.fit(reference_loader, epochs=1)

        resumed, resumed_loader, resumed_model, stopper = self._make(path)
        arrays, metadata = load_checkpoint(path)
        resumed.load_state_dict(arrays, metadata)
        assert stopper._best_params is not None  # survived the round trip
        result = resumed.fit(resumed_loader, epochs=30)

        # The resumed run never improves again: without persisted best
        # weights it would finish with last-epoch parameters.
        assert result.stopped_early
        for p, q in zip(resumed_model.parameters(), reference_model.parameters()):
            np.testing.assert_array_equal(p.data, q.data)

    def test_best_weight_arrays_live_in_the_snapshot(self, tmp_path):
        path = str(tmp_path / "ck.npz")
        trainer, loader, model, _ = self._make(path)
        trainer.fit(loader, epochs=2)
        arrays, _ = load_checkpoint(path)
        best_keys = [key for key in arrays if key.startswith("callback.0.best.")]
        assert len(best_keys) == len(model.parameters())

    def test_stateless_resume_clears_stale_best(self):
        stopper = EarlyStopping(patience=2, restore_best=True)
        stopper._best_params = [np.ones(3)]
        stopper.load_state_arrays({})
        assert stopper._best_params is None


# ---------------------------------------------------------------------------
# Detector-level validation_fraction
# ---------------------------------------------------------------------------
class TestDetectorValidation:
    def test_early_stops_on_held_out_loss(self):
        series = _series()
        config = _small_config(epochs=10, validation_fraction=0.25,
                               early_stopping_patience=1,
                               early_stopping_min_delta=1e9)
        detector = ImDiffusionDetector(config).fit(series)
        result = detector.last_train_result
        assert result.stopped_early
        assert result.epochs_run == 2
        assert len(detector.val_losses) == 2
        assert detector.val_losses == result.val_losses

    def test_val_curve_is_deterministic(self):
        series = _series()
        config = _small_config(validation_fraction=0.25)
        first = ImDiffusionDetector(config).fit(series)
        second = ImDiffusionDetector(_small_config(validation_fraction=0.25)).fit(series)
        assert first.val_losses == second.val_losses
        assert len(first.val_losses) == config.epochs
        assert all(np.isfinite(v) for v in first.val_losses)

    def test_val_losses_round_trip_detector_checkpoint(self):
        series = _series()
        detector = ImDiffusionDetector(
            _small_config(validation_fraction=0.25)).fit(series)
        arrays, metadata = detector.to_checkpoint()
        restored = ImDiffusionDetector.from_checkpoint(arrays, metadata)
        assert restored.val_losses == detector.val_losses

    def test_config_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            _small_config(validation_fraction=1.0)
        with pytest.raises(ValueError):
            _small_config(validation_fraction=-0.2)

    def test_fraction_zero_keeps_bit_identity(self):
        # The validation code path must not perturb the random stream of a
        # validation-free run (the PR 3 legacy bit-identity guarantee).
        series = _series()
        with_knob = ImDiffusionDetector(_small_config(validation_fraction=0.0)).fit(series)
        without = ImDiffusionDetector(_small_config()).fit(series)
        for p, q in zip(with_knob.model.parameters(), without.model.parameters()):
            np.testing.assert_array_equal(p.data, q.data)


# ---------------------------------------------------------------------------
# Baselines: constructor forwarding + val-loss early stop
# ---------------------------------------------------------------------------
class TestBaselineValidation:
    def test_lstm_ad_early_stops_on_val_loss(self):
        series = _series(length=160)
        detector = LSTMADDetector(history=8, hidden_size=12, epochs=10,
                                  max_train_samples=96, seed=0,
                                  early_stopping_patience=1,
                                  early_stopping_min_delta=1e9,
                                  validation_fraction=0.25)
        detector.fit(series)
        result = detector.last_train_result
        assert result.stopped_early and result.epochs_run == 2
        assert len(detector.val_losses) == 2

    def test_beatgan_early_stops_on_val_loss(self):
        # GAN baseline: validation uses the side-effect-free generator loss.
        series = _series(length=160)
        detector = BeatGANDetector(window_size=16, hidden_dim=16, epochs=10,
                                   max_train_windows=32, seed=0,
                                   early_stopping_patience=1,
                                   early_stopping_min_delta=1e9,
                                   validation_fraction=0.25)
        detector.fit(series)
        result = detector.last_train_result
        assert result.stopped_early and result.epochs_run == 2
        assert len(detector.val_losses) == 2

    def test_omni_anomaly_val_curve_uses_dedicated_rng(self):
        # The VAE's reparameterisation draws from the validation generator,
        # so two fits produce identical held-out curves.
        series = _series(length=160)

        def make():
            return OmniAnomalyDetector(window_size=16, hidden_size=12, epochs=2,
                                       max_train_windows=32, seed=0,
                                       validation_fraction=0.25)

        first = make().fit(series)
        second = make().fit(series)
        assert first.val_losses == second.val_losses
        assert len(first.val_losses) == 2

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            LSTMADDetector(validation_fraction=1.5)
        with pytest.raises(ValueError):
            LSTMADDetector(early_stopping_patience=0)


# ---------------------------------------------------------------------------
# Evaluation runner records the validation curve
# ---------------------------------------------------------------------------
class TestRunnerRecordsValCurve:
    def test_evaluate_detector_records_val_losses(self):
        from repro.data import load_dataset

        dataset = load_dataset("GCP", seed=0, scale=0.06)
        summary = evaluate_detector(
            lambda seed: ImDiffusionDetector(_small_config(
                epochs=2, validation_fraction=0.25, seed=seed)),
            dataset, num_runs=1, detector_name="ImDiffusion")
        run = summary.runs[0]
        assert len(run.val_losses) == 2
        assert run.final_val_loss == run.val_losses[-1]
        assert run.train_epochs == 2

    def test_evaluate_detector_applies_validation_overrides(self):
        from repro.data import load_dataset

        dataset = load_dataset("GCP", seed=0, scale=0.06)
        # The factory itself trains without validation; the runner override
        # switches every run to a 25% tail split.
        summary = evaluate_detector(
            lambda seed: ImDiffusionDetector(_small_config(epochs=2, seed=seed)),
            dataset, num_runs=1, detector_name="ImDiffusion",
            validation_fraction=0.25, validation_split="tail")
        assert len(summary.runs[0].val_losses) == 2

    def test_evaluate_detector_overrides_apply_to_baselines(self):
        from repro.data import load_dataset

        dataset = load_dataset("GCP", seed=0, scale=0.06)
        summary = evaluate_detector(
            lambda seed: LSTMADDetector(history=6, hidden_size=8, epochs=2,
                                        max_train_samples=48, seed=seed),
            dataset, num_runs=1, detector_name="LSTM-AD",
            validation_fraction=0.25)
        assert len(summary.runs[0].val_losses) == 2

    def test_evaluate_detector_rejects_bad_fraction(self):
        from repro.data import load_dataset

        dataset = load_dataset("GCP", seed=0, scale=0.06)
        with pytest.raises(ValueError, match="validation_fraction"):
            evaluate_detector(
                lambda seed: ImDiffusionDetector(_small_config(seed=seed)),
                dataset, num_runs=1, validation_fraction=1.5)
