"""Documentation smoke-checker: links resolve, python blocks execute.

Run from the repository root (CI's ``docs`` job does exactly this):

    PYTHONPATH=src python tools/check_docs.py

Checks, over ``README.md`` and every ``docs/*.md``:

* every relative markdown link / image points at an existing file, and a
  ``#fragment`` on a local markdown target matches a heading anchor in it
  (external ``http(s)://`` links are only syntax-checked, never fetched);
* every fenced ``python`` block in ``docs/*.md`` executes without raising
  (blocks are independent; add ``<!-- check_docs: skip -->`` on the line
  directly above a fence to exclude a block that needs external state).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```(\w*)\s*$")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
SKIP_MARK = "check_docs: skip"


def heading_anchor(title: str) -> str:
    """GitHub-style anchor for a heading title."""
    title = re.sub(r"[`*_]", "", title.strip().lower())
    title = re.sub(r"[^\w\- ]", "", title)
    return title.replace(" ", "-")


def anchors_of(path: Path) -> set:
    anchors = set()
    for line in path.read_text().splitlines():
        match = HEADING_RE.match(line)
        if match:
            anchors.add(heading_anchor(match.group(1)))
    return anchors


def iter_docs():
    yield ROOT / "README.md"
    yield from sorted((ROOT / "docs").glob("*.md"))


def strip_code(text: str) -> str:
    """Remove fenced code blocks so their contents aren't link-checked."""
    out, in_fence = [], False
    for line in text.splitlines():
        if FENCE_RE.match(line) or line.strip() == "```":
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def check_links(path: Path) -> list:
    problems = []
    for target in LINK_RE.findall(strip_code(path.read_text())):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        resolved = (path.parent / base).resolve() if base else path
        if not resolved.exists():
            problems.append(f"{path.relative_to(ROOT)}: broken link -> {target}")
        elif fragment and resolved.suffix == ".md":
            if heading_anchor(fragment) not in anchors_of(resolved):
                problems.append(
                    f"{path.relative_to(ROOT)}: missing anchor -> {target}")
    return problems


def python_blocks(path: Path):
    lines = path.read_text().splitlines()
    block, language, start, skip_next = [], None, 0, False
    for number, line in enumerate(lines, 1):
        fence = FENCE_RE.match(line)
        if language is None:
            if fence and fence.group(1) == "python":
                if skip_next:
                    language, skip_next = "skipped", None
                else:
                    language, block, start = "python", [], number
            elif fence:
                language = "other"
            skip_next = SKIP_MARK in line
        elif line.strip() == "```":
            if language == "python":
                yield start, "\n".join(block)
            language = None
        elif language == "python":
            block.append(line)


def check_python(path: Path) -> list:
    problems = []
    for start, source in python_blocks(path):
        where = f"{path.relative_to(ROOT)}:{start}"
        try:
            exec(compile(source, where, "exec"), {"__name__": "__docs__"})
        except Exception as error:  # noqa: BLE001 - report, keep checking
            problems.append(f"{where}: python block failed: {error!r}")
        else:
            print(f"ok: python block at {where}")
    return problems


def main() -> int:
    problems = []
    for path in iter_docs():
        if not path.exists():
            problems.append(f"missing documentation file: {path}")
            continue
        problems.extend(check_links(path))
        if path.parent.name == "docs":
            problems.extend(check_python(path))
    if problems:
        print("\n".join(problems), file=sys.stderr)
        print(f"\n{len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    print("documentation checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
